"""Unit + property tests for compaction picking and MVCC dedup rules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.compaction import dedup_entries, merge_sorted_runs
from repro.storage.memtable import MAX_SEQ, VTYPE_DELETE, VTYPE_VALUE


def entry(key, seq, vtype=VTYPE_VALUE, value=b"v"):
    return (key, seq, vtype, value)


def internal_sorted(entries):
    return sorted(entries, key=lambda e: (e[0], MAX_SEQ - e[1]))


class TestMergeSortedRuns:
    def test_merges_in_internal_order(self):
        run1 = internal_sorted([entry(b"a", 1), entry(b"c", 3)])
        run2 = internal_sorted([entry(b"b", 2), entry(b"c", 5)])
        merged = list(merge_sorted_runs([run1, run2]))
        assert [(e[0], e[1]) for e in merged] == [
            (b"a", 1),
            (b"b", 2),
            (b"c", 5),  # newer version of c first
            (b"c", 3),
        ]

    def test_empty_runs(self):
        assert list(merge_sorted_runs([])) == []
        assert list(merge_sorted_runs([[], []])) == []


class TestDedup:
    def test_keeps_only_newest_without_snapshots(self):
        entries = internal_sorted(
            [entry(b"k", 1, value=b"old"), entry(b"k", 5, value=b"new")]
        )
        out = list(dedup_entries(entries, [], drop_tombstones=False))
        assert out == [entry(b"k", 5, value=b"new")]

    def test_snapshot_pins_old_version(self):
        entries = internal_sorted(
            [entry(b"k", 1, value=b"old"), entry(b"k", 5, value=b"new")]
        )
        out = list(dedup_entries(entries, [3], drop_tombstones=False))
        assert out == [entry(b"k", 5, value=b"new"), entry(b"k", 1, value=b"old")]

    def test_snapshot_between_versions_only_keeps_needed(self):
        entries = internal_sorted(
            [
                entry(b"k", 1, value=b"v1"),
                entry(b"k", 3, value=b"v3"),
                entry(b"k", 5, value=b"v5"),
            ]
        )
        # Snapshot at 3 sees v3; v1 is shadowed for every reader.
        out = list(dedup_entries(entries, [3], drop_tombstones=False))
        assert [e[1] for e in out] == [5, 3]

    def test_tombstone_kept_above_bottom(self):
        entries = internal_sorted(
            [entry(b"k", 1, value=b"old"), entry(b"k", 5, VTYPE_DELETE, b"")]
        )
        out = list(dedup_entries(entries, [], drop_tombstones=False))
        assert out == [entry(b"k", 5, VTYPE_DELETE, b"")]

    def test_tombstone_dropped_at_bottom(self):
        entries = internal_sorted(
            [entry(b"k", 1, value=b"old"), entry(b"k", 5, VTYPE_DELETE, b"")]
        )
        out = list(dedup_entries(entries, [], drop_tombstones=True))
        assert out == []  # the key ceases to exist; no resurrection

    def test_tombstone_with_snapshot_below_is_kept(self):
        entries = internal_sorted(
            [entry(b"k", 1, value=b"old"), entry(b"k", 5, VTYPE_DELETE, b"")]
        )
        out = list(dedup_entries(entries, [2], drop_tombstones=True))
        # Snapshot 2 must still see the old value; the tombstone must still
        # shadow it for newer readers.
        assert entry(b"k", 1, value=b"old") in out
        assert entry(b"k", 5, VTYPE_DELETE, b"") in out

    def test_multiple_keys_independent(self):
        entries = internal_sorted(
            [entry(b"a", 1), entry(b"a", 2), entry(b"b", 3), entry(b"c", 4)]
        )
        out = list(dedup_entries(entries, [], drop_tombstones=False))
        assert [(e[0], e[1]) for e in out] == [(b"a", 2), (b"b", 3), (b"c", 4)]

    @given(
        versions=st.lists(
            st.tuples(
                st.sampled_from([b"k1", b"k2", b"k3"]),
                st.booleans(),  # is_delete
            ),
            min_size=1,
            max_size=30,
        ),
        snapshot_offset=st.integers(0, 31),
        bottom=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_visibility_preserved_for_live_readers(
        self, versions, snapshot_offset, bottom
    ):
        """For the latest reader and any live snapshot, the visible value of
        every key must be identical before and after dedup."""
        entries = [
            entry(key, seq, VTYPE_DELETE if is_delete else VTYPE_VALUE,
                  b"" if is_delete else b"v%d" % seq)
            for seq, (key, is_delete) in enumerate(versions, start=1)
        ]
        snapshots = [snapshot_offset] if snapshot_offset <= len(versions) else []
        ordered = internal_sorted(entries)
        surviving = list(
            dedup_entries(ordered, sorted(snapshots), drop_tombstones=bottom)
        )

        def visible(source, key, at_seq):
            best = None
            for k, seq, vtype, value in source:
                if k == key and seq <= at_seq:
                    if best is None or seq > best[0]:
                        best = (seq, vtype, value)
            if best is None or best[1] == VTYPE_DELETE:
                return None
            return best[2]

        readers = [MAX_SEQ] + snapshots
        for at_seq in readers:
            for key in (b"k1", b"k2", b"k3"):
                assert visible(ordered, key, at_seq) == visible(
                    surviving, key, at_seq
                ), (key, at_seq)
