"""Critical-path extraction and causal what-if profiler tests.

Covers the wakeup edge log, exact hand-built paths over the sim kernel's
primitives, the per-request/makespan extractors, the Figure 6 cross-check
against span attribution, and the Coz-style prediction-vs-measurement
acceptance criteria (WAL speedup and +1 device channel within tolerance).
"""

import json

import pytest

from repro.core import adapter_factory
from repro.critpath import (
    EXPERIMENTS,
    EdgeLog,
    check_prediction,
    critpath_report,
    fig06_from_blame,
    install_edgelog,
    makespan_path,
    path_trace_extras,
    predicted_delta,
    request_paths,
    uninstall_edgelog,
    walk_back,
)
from repro.critpath.extract import CriticalPath, Segment, aggregate_blame
from repro.engine import make_env
from repro.harness import P2KVSSystem, open_system, preload, run_closed_loop
from repro.harness.report import format_blame_table
from repro.sim.core import Simulator
from repro.sim.cpu import CPUSet
from repro.sim.queues import FIFOQueue
from repro.sim.sync import Lock
from repro.tools import whatif
from repro.trace import install_tracer
from repro.trace.attribution import fig06_from_spans
from repro.trace.chrome import to_chrome_events
from repro.workloads import YCSBWorkload, fillrandom, split_stream


def _segs(segments):
    """(label, start, end) triples in chronological order."""
    return [
        (s.label, pytest.approx(s.start, abs=1e-12), pytest.approx(s.end, abs=1e-12))
        for s in reversed(segments)
    ]


# ---------------------------------------------------------------------------
# edge log mechanics
# ---------------------------------------------------------------------------


def test_edgelog_install_uninstall():
    sim = Simulator()
    log = install_edgelog(sim)
    assert sim.edgelog is log
    uninstall_edgelog(sim)
    assert sim.edgelog is None


def test_edgelog_records_resumes_and_spawns():
    sim = Simulator()
    log = install_edgelog(sim)

    def child():
        yield sim.timeout(1.0)

    def parent():
        yield sim.spawn(child(), "child")

    sim.spawn(parent(), "parent")
    sim.run()
    counts = log.counts()
    assert counts["resumes"] > 0
    assert counts["edges"] > 0
    assert counts["spawns"] >= 2
    assert counts["dropped"] == 0


def test_edgelog_bounded_by_max_records():
    sim = Simulator()
    log = install_edgelog(sim, max_records=5)

    def ticker():
        for _ in range(50):
            yield sim.timeout(0.001)

    sim.spawn(ticker(), "ticker")
    sim.run()
    assert log.counts()["resumes"] == 5
    assert log.counts()["dropped"] == 45


def test_track_bindings_are_time_qualified():
    """Two successive processes reusing one track name (preload then the
    measured run) must resolve to the process live at the queried time."""
    sim = Simulator()
    log = install_edgelog(sim)
    procs = {}

    def phase(name, start):
        def body():
            yield sim.timeout(start)
            log.bind_track("threads:user-0", sim.current_process)
            procs[name] = sim.current_process
            yield sim.timeout(1.0)

        return body

    sim.spawn(phase("first", 0.0)(), "first")
    sim.spawn(phase("second", 5.0)(), "second")
    sim.run()
    assert log.track_proc_at("threads:user-0", 0.5) is procs["first"]
    assert log.track_proc_at("threads:user-0", 6.0) is procs["second"]


# ---------------------------------------------------------------------------
# hand-built scenarios with known exact paths
# ---------------------------------------------------------------------------


def test_timeout_blames_the_sleep():
    sim = Simulator()
    log = install_edgelog(sim)
    done = {}

    def sleeper():
        yield sim.timeout(5.0)
        done["proc"] = sim.current_process

    sim.spawn(sleeper(), "sleeper")
    sim.run()
    segments = walk_back(log, done["proc"], 5.0, 0.0)
    assert _segs(segments) == [("timeout", 0.0, 5.0)]


def test_lock_chain_walks_through_all_holders():
    """Three processes serialized on one lock: the path through the last
    completion is exactly the three holders' CPU bursts, chained via the
    FIFO lock hand-offs — the textbook critical path."""
    sim = Simulator()
    log = install_edgelog(sim)
    cpu = CPUSet(sim, n_cores=4, migration_overhead=0.0)
    lock = Lock(sim, "wal")
    done = {}

    def worker(name, duration, category):
        ctx = cpu.new_thread(name)
        yield lock.acquire()
        yield cpu.exec(ctx, duration, category)
        lock.release()
        done[name] = sim.current_process

    sim.spawn(worker("c", 2.0, "gamma"), "c")
    sim.spawn(worker("b", 3.0, "beta"), "b")
    sim.spawn(worker("a", 1.0, "alpha"), "a")
    sim.run()
    assert sim.now == pytest.approx(6.0)
    segments = walk_back(log, done["a"], 6.0, 0.0)
    assert _segs(segments) == [
        ("cpu:gamma", 0.0, 2.0),
        ("cpu:beta", 2.0, 5.0),
        ("cpu:alpha", 5.0, 6.0),
    ]
    # Coverage invariant: the segments tile the walked window exactly.
    path = CriticalPath("a", 0.0, 6.0, segments)
    assert path.covered == pytest.approx(path.span)
    assert path.blame() == {
        "cpu:gamma": pytest.approx(2.0),
        "cpu:beta": pytest.approx(3.0),
        "cpu:alpha": pytest.approx(1.0),
    }


def test_queue_handoff_walks_into_the_producer():
    """A consumer blocked on an empty queue inherits the producer's history:
    the wait is *caused* by the producer still computing the item."""
    sim = Simulator()
    log = install_edgelog(sim)
    cpu = CPUSet(sim, n_cores=2, migration_overhead=0.0)
    queue = FIFOQueue(sim, "jobs")
    done = {}

    def producer():
        ctx = cpu.new_thread("producer")
        yield cpu.exec(ctx, 3.0, "produce")
        queue.put("job")

    def consumer():
        item = yield queue.get()
        assert item == "job"
        done["proc"] = sim.current_process

    sim.spawn(consumer(), "consumer")
    sim.spawn(producer(), "producer")
    sim.run()
    segments = walk_back(log, done["proc"], 3.0, 0.0)
    assert _segs(segments) == [("cpu:produce", 0.0, 3.0)]


def test_cpu_queueing_blamed_separately_from_service():
    """Two bursts contending for one core: the loser's path shows its own
    service time plus the winner's burst as cpu_queue time."""
    sim = Simulator()
    log = install_edgelog(sim)
    cpu = CPUSet(sim, n_cores=1, migration_overhead=0.0)
    done = {}

    def burst(name, category):
        ctx = cpu.new_thread(name)
        yield cpu.exec(ctx, 2.0, category)
        done[name] = sim.current_process

    sim.spawn(burst("first", "win"), "first")
    sim.spawn(burst("second", "lose"), "second")
    sim.run()
    assert sim.now == pytest.approx(4.0)
    segments = walk_back(log, done["second"], 4.0, 0.0)
    blame = CriticalPath("second", 0.0, 4.0, segments).blame()
    assert blame["cpu:lose"] == pytest.approx(2.0)
    assert blame["cpu_queue:lose"] == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# aggregate blame / formatting
# ---------------------------------------------------------------------------


def test_aggregate_blame_ranks_and_shares():
    paths = [
        CriticalPath("r1", 0.0, 3.0, [Segment("cpu:wal", 0.0, 2.0), Segment("timeout", 2.0, 3.0)]),
        CriticalPath("r2", 0.0, 2.0, [Segment("cpu:wal", 0.0, 2.0)]),
    ]
    blame = aggregate_blame(paths)
    assert [row["label"] for row in blame["rows"]] == ["cpu:wal", "timeout"]
    top = blame["rows"][0]
    assert top["seconds"] == pytest.approx(4.0)
    assert top["share"] == pytest.approx(0.8)
    assert top["paths"] == 2
    assert blame["n_paths"] == 2
    text = format_blame_table(blame)
    assert "cpu:wal" in text and "80.0%" in text and "total" in text


def test_fig06_bucket_mapping():
    blame = aggregate_blame(
        [
            CriticalPath(
                "r",
                0.0,
                10.0,
                [
                    Segment("device:write:wal", 0.0, 4.0),
                    Segment("lock:wal_lock", 4.0, 6.0),
                    Segment("cpu:memtable", 6.0, 9.0),
                    Segment("cpu:dispatch", 9.0, 10.0),
                ],
            )
        ]
    )
    fig06 = fig06_from_blame(blame)
    assert fig06["categories"]["WAL"] == pytest.approx(4.0)
    assert fig06["categories"]["WAL lock"] == pytest.approx(2.0)
    assert fig06["categories"]["MemTable"] == pytest.approx(3.0)
    assert fig06["categories"]["Others"] == pytest.approx(1.0)
    assert sum(fig06["shares"].values()) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# end-to-end extraction on the simulated stack
# ---------------------------------------------------------------------------


def _ycsb_run(n_records=300, n_ops=400, threads=2):
    env = make_env(n_cores=8)
    tracer = install_tracer(env)
    edgelog = install_edgelog(env)
    system = open_system(
        env,
        P2KVSSystem.open(
            env,
            n_workers=4,
            adapter_open=adapter_factory(
                "rocksdb",
                write_buffer_size=64 * 1024,
                target_file_size=64 * 1024,
                max_bytes_for_level_base=256 * 1024,
            ),
        ),
    )
    workload = YCSBWorkload("A", n_records, value_size=112, seed=5)
    preload(env, system, workload.load_ops(), n_threads=threads)
    ops = list(workload.ops(n_ops))
    streams = [[] for _ in range(threads)]
    for i, op in enumerate(ops):
        streams[i % threads].append(op)
    t0 = env.sim.now
    metrics = run_closed_loop(env, system, streams)
    return env, tracer, edgelog, (t0, t0 + metrics.elapsed), n_ops


def test_request_paths_cover_their_spans():
    _env, tracer, edgelog, window, n_ops = _ycsb_run()
    paths = request_paths(edgelog, tracer, window)
    assert len(paths) == n_ops
    for path in paths:
        assert path.covered == pytest.approx(path.span, rel=1e-9, abs=1e-12)
        for seg in path.segments:
            assert window[0] - 1e-12 <= seg.start <= seg.end <= window[1] + 1e-12


def test_makespan_path_tiles_the_window():
    _env, tracer, edgelog, window, _n = _ycsb_run()
    path = makespan_path(edgelog, tracer, window)
    assert path is not None
    assert path.t_start == pytest.approx(window[0])
    assert path.covered == pytest.approx(path.span, rel=1e-9, abs=1e-12)
    assert path.blame()


def test_critpath_report_shape():
    _env, tracer, edgelog, window, n_ops = _ycsb_run()
    report = critpath_report(edgelog, tracer, window)
    assert report["n_requests"] == n_ops
    assert report["blame"]["rows"]
    assert report["makespan"]["covered"] == pytest.approx(
        report["makespan"]["t_end"] - report["makespan"]["t_start"], rel=1e-9
    )
    json.dumps(report)  # must be JSON-serializable as exported


def test_blame_argmax_matches_fig06_spans():
    """Acceptance criterion: on the concurrency workload the critical-path
    blame ranking names the same dominant Figure 6 component as the
    span-derived breakdown (repro.trace.attribution)."""
    _env, tracer, edgelog, window, _n = _ycsb_run()
    report = critpath_report(edgelog, tracer, window)
    from_blame = fig06_from_blame(report["blame"])
    from_spans = fig06_from_spans(tracer, window=window)
    assert from_blame["categories"] and from_spans["categories"]
    top_blame = max(from_blame["categories"].items(), key=lambda kv: kv[1])[0]
    top_spans = max(from_spans["categories"].items(), key=lambda kv: kv[1])[0]
    assert top_blame == top_spans


def test_chrome_trace_gets_critpath_track_and_flow():
    _env, tracer, edgelog, window, _n = _ycsb_run(n_records=100, n_ops=100)
    path = makespan_path(edgelog, tracer, window)
    extras, flows = path_trace_extras(path, name="makespan")
    assert extras and flows
    events = to_chrome_events(tracer, extra_spans=extras, flows=flows)
    flow_events = [e for e in events if e["ph"] in ("s", "t", "f")]
    assert flow_events and flow_events[0]["ph"] == "s"
    assert flow_events[-1]["ph"] == "f" and flow_events[-1]["bp"] == "e"
    assert any(e["ph"] == "M" and e["args"]["name"] == "critpath" for e in events)
    # Flow timestamps are non-decreasing along the chain.
    ts = [e["ts"] for e in flow_events]
    assert ts == sorted(ts)


# ---------------------------------------------------------------------------
# causal what-if profiler (acceptance criteria)
# ---------------------------------------------------------------------------


WHATIF_ARGS = [
    "--num", "2000",
    "--device", "sata",
    "--value-size", "4096",
    "--workers", "8",
    "--threads", "8",
]


@pytest.fixture(scope="module")
def whatif_baseline():
    args = whatif.build_parser().parse_args(WHATIF_ARGS)
    metrics, report = whatif._run(args, with_critpath=True)
    return args, metrics, report


def _measured_delta(args, baseline_metrics, experiment):
    metrics, _ = whatif._run(args, experiment=experiment)
    return metrics.qps / baseline_metrics.qps - 1.0


def test_whatif_wal_speedup_prediction_within_tolerance(whatif_baseline):
    """Acceptance criterion 1: speeding up WAL writes 0.8x — the predicted
    throughput delta from the critical path lands within 25% of the delta
    measured by actually re-running with the scaled service time."""
    args, metrics, report = whatif_baseline
    experiment = EXPERIMENTS["wal-write-0.8x"]
    predicted = predicted_delta(report, experiment, metrics.elapsed, channels=1)
    measured = _measured_delta(args, metrics, experiment)
    assert measured > 0.02  # the speedup is real, not noise
    assert check_prediction(predicted, measured)


def test_whatif_extra_channel_prediction_within_tolerance(whatif_baseline):
    """Acceptance criterion 2: adding one device channel — predicted from
    device queueing blame on the makespan path, within 25% of measured."""
    args, metrics, report = whatif_baseline
    from repro.tools.dbbench import DEVICES

    channels = DEVICES[args.device].channels
    experiment = EXPERIMENTS["channels+1"]
    predicted = predicted_delta(report, experiment, metrics.elapsed, channels)
    measured = _measured_delta(args, metrics, experiment)
    assert measured > 0.02
    assert check_prediction(predicted, measured)


def test_whatif_cli_check_passes():
    rc = whatif.main(
        WHATIF_ARGS + ["--experiments", "wal-write-0.8x,channels+1", "--check"]
    )
    assert rc == 0


def test_check_prediction_tolerance_band():
    assert check_prediction(0.10, 0.10)
    assert check_prediction(0.10, 0.12)  # within 25% relative
    assert not check_prediction(0.10, 0.20)
    assert check_prediction(0.0, 0.015)  # absolute floor for near-zero deltas
    assert not check_prediction(0.0, 0.05)
