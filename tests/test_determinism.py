"""End-to-end determinism: identical seeds give byte-identical results, and
seeded schedule perturbation must not change final DB state or metrics."""

import hashlib
import json

import pytest

from repro.analysis.perturb import (
    PerturbationMismatch,
    diff_paths,
    fingerprint,
    run_perturbed,
)
from repro.core import adapter_factory
from repro.critpath import critpath_report, install_edgelog
from repro.engine import LSMEngine, make_env, rocksdb_options
from repro.harness import KVellSystem, P2KVSSystem, open_system, preload, run_closed_loop
from repro.harness.report import format_blame_table
from repro.trace import install_tracer
from repro.metrics import install_stats, timeseries_csv
from repro.sim.core import Simulator
from repro.workloads import YCSBWorkload
from tests.conftest import run_process

RECORDS = 400
OPS = 600
THREADS = 2


def _open_p2kvs(env):
    return open_system(
        env,
        P2KVSSystem.open(
            env,
            n_workers=4,
            adapter_open=adapter_factory(
                "rocksdb",
                write_buffer_size=64 * 1024,
                target_file_size=64 * 1024,
                max_bytes_for_level_base=256 * 1024,
            ),
        ),
    )


def _db_fingerprint(env, system, keys):
    """sha256 over every (key, value) read back from the live system."""
    digest = hashlib.sha256()
    box = []

    def reader():
        ctx = env.cpu.new_thread("fingerprint")
        for key in keys:
            value = yield from system.kvs.get(ctx, key)
            digest.update(key)
            digest.update(value if value is not None else b"\0missing")
        box.append(digest.hexdigest())

    env.sim.spawn(reader())
    env.sim.run()
    return box[0]


def _run_ycsb_a(schedule_seed=None, stats=False, critpath=False):
    """One small YCSB-A run on p2KVS; returns metrics dict + DB digest.

    With ``stats=True`` the observability layer is on (per-request perf
    contexts + a fine-grained sampler) and the result also carries the
    sampled time series as CSV text plus the registry counter values.
    With ``critpath=True`` the wakeup edge log and tracer are on and the
    result carries the rendered blame table plus the edge-log counters.
    """
    env = make_env(n_cores=8)
    if schedule_seed is not None:
        env.sim.perturb_schedule(schedule_seed)
    if stats:
        install_stats(env, interval_ms=0.05)
    tracer = install_tracer(env) if critpath else None
    edgelog = install_edgelog(env) if critpath else None
    system = _open_p2kvs(env)
    workload = YCSBWorkload("A", RECORDS, value_size=112, seed=5)
    preload(env, system, workload.load_ops(), n_threads=THREADS)
    ops = list(workload.ops(OPS))
    streams = [[] for _ in range(THREADS)]
    for i, op in enumerate(ops):
        streams[i % THREADS].append(op)
    t0 = env.sim.now
    metrics = run_closed_loop(env, system, streams)
    out = {
        "ops": metrics.n_ops,
        "qps": metrics.qps,
        "avg_latency": metrics.avg_latency,
        "p99_latency": metrics.p99_latency,
        "elapsed": metrics.elapsed,
    }
    if critpath:
        # Extract before the fingerprint pass adds unrelated sim activity.
        report = critpath_report(edgelog, tracer, (t0, t0 + metrics.elapsed))
        out["blame"] = format_blame_table(report["blame"])
        out["makespan_blame"] = report["makespan"]["blame"]
        out["edge_counts"] = report["counts"]
    keys = sorted({op[1] for op in workload.load_ops()})
    out["db"] = _db_fingerprint(env, system, keys)
    if stats:
        out["series"] = timeseries_csv(env.metrics.sampler)
        out["counters"] = env.metrics.counter_values()
    return out


# ---------------------------------------------------------------------------
# identical seeds -> byte-identical runs
# ---------------------------------------------------------------------------


def test_ycsb_a_twice_is_byte_identical():
    first = json.dumps(_run_ycsb_a(), sort_keys=True)
    second = json.dumps(_run_ycsb_a(), sort_keys=True)
    assert first == second


def test_kvell_repeat_runs_identical():
    """Regression for the set-iteration fix in baselines/kvell.py: page IOs
    are issued in sorted order, so repeat runs agree exactly."""

    def run_once():
        env = make_env(n_cores=8)
        system = open_system(env, KVellSystem.open(env, n_workers=4))
        workload = YCSBWorkload("A", 300, value_size=112, seed=3)
        preload(env, system, workload.load_ops(), n_threads=2)
        ops = list(workload.ops(400))
        streams = [ops[0::2], ops[1::2]]
        metrics = run_closed_loop(env, system, streams)
        return (metrics.n_ops, metrics.qps, metrics.avg_latency, metrics.elapsed)

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# schedule perturbation
# ---------------------------------------------------------------------------


def test_ycsb_a_schedule_perturbation_stable():
    """Acceptance criterion: final DB state and throughput metrics identical
    across >= 3 perturbation seeds on a YCSB-A smoke."""
    results = run_perturbed(_run_ycsb_a, seeds=(1, 2, 3))
    assert len({fingerprint(r) for r in results.values()}) == 1
    # ... and the perturbed runs also match the unperturbed baseline.
    assert fingerprint(_run_ycsb_a()) == fingerprint(results[1])


def test_perturbation_actually_shuffles_and_is_caught():
    """A deliberately order-dependent model must trip PerturbationMismatch —
    proof the perturbation really explores different same-time orders."""

    def run(seed):
        sim = Simulator()
        sim.perturb_schedule(seed)
        order = []

        def proc(i):
            yield sim.timeout(1.0)  # all six wake at the same instant
            order.append(i)

        for i in range(6):
            sim.spawn(proc(i), "p%d" % i)
        sim.run()
        return order

    with pytest.raises(PerturbationMismatch):
        run_perturbed(run, seeds=(1, 2, 3, 4, 5))


def test_perturbation_is_reproducible_per_seed():
    def run(seed):
        sim = Simulator()
        sim.perturb_schedule(seed)
        order = []

        def proc(i):
            yield sim.timeout(1.0)
            order.append(i)

        for i in range(6):
            sim.spawn(proc(i), "p%d" % i)
        sim.run()
        return order

    assert run(7) == run(7)
    assert run(7) != list(range(6)) or run(8) != list(range(6))


# ---------------------------------------------------------------------------
# observability determinism (see repro/metrics/sampler.py)
# ---------------------------------------------------------------------------


def test_sampler_series_byte_identical_across_reruns():
    """Enabled stats are exactly as deterministic as the kernel: two
    identical runs emit byte-identical sampled CSV and counter values."""
    first = _run_ycsb_a(stats=True)
    second = _run_ycsb_a(stats=True)
    assert first["series"] == second["series"]
    assert first["counters"] == second["counters"]
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_sampler_series_stable_under_schedule_perturbation():
    """Satellite acceptance: the sampled time series survives --schedule-seed
    perturbation byte-for-byte, like every other result."""
    results = run_perturbed(
        lambda seed: _run_ycsb_a(schedule_seed=seed, stats=True), seeds=(1, 2, 3)
    )
    assert len({fingerprint(r) for r in results.values()}) == 1
    assert fingerprint(_run_ycsb_a(stats=True)) == fingerprint(results[1])


def test_critpath_blame_byte_identical_across_reruns():
    """Satellite acceptance: the blame table and edge-log counters of two
    identical runs are byte-identical — the walk is fully deterministic."""
    first = _run_ycsb_a(critpath=True)
    second = _run_ycsb_a(critpath=True)
    assert first["blame"] == second["blame"]
    assert first["edge_counts"] == second["edge_counts"]
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_critpath_blame_stable_under_schedule_perturbation():
    """Satellite acceptance: --schedule-seed perturbation must not change
    the extracted blame table or the edge counts."""
    results = run_perturbed(
        lambda seed: _run_ycsb_a(schedule_seed=seed, critpath=True), seeds=(1, 2, 3)
    )
    assert len({fingerprint(r) for r in results.values()}) == 1
    assert fingerprint(_run_ycsb_a(critpath=True)) == fingerprint(results[1])


def test_stats_on_does_not_perturb_simulation_results():
    """Zero-overhead contract, strong form: turning the observability layer
    ON must not change throughput, latency, or final DB state — sampler
    ticks and perf contexts never touch CPU, device, or lock state."""
    plain = _run_ycsb_a()
    stats = _run_ycsb_a(stats=True)
    assert {k: stats[k] for k in plain} == plain


def test_critpath_on_does_not_perturb_simulation_results():
    """Zero-overhead contract for the edge log: recording wakeup edges
    never advances simulated time or touches scheduling state, so results
    with --critpath on equal the plain run exactly."""
    plain = _run_ycsb_a()
    critpath = _run_ycsb_a(critpath=True)
    assert {k: critpath[k] for k in plain} == plain


def test_critpath_does_not_perturb_stats_outputs():
    """Zero-interference both ways: the sampled series and counters with the
    edge log installed are byte-identical to stats-only runs."""
    stats_only = _run_ycsb_a(stats=True)
    both = _run_ycsb_a(stats=True, critpath=True)
    assert both["series"] == stats_only["series"]
    assert both["counters"] == stats_only["counters"]


# ---------------------------------------------------------------------------
# write-group leader hand-off (audit regression, see engine/write_group.py)
# ---------------------------------------------------------------------------


def test_write_group_leader_handoff_is_fifo(env):
    """With grouping disabled every writer must lead in arrival order —
    the hand-off pops the pending deque FIFO, never by dict/set order."""
    options = rocksdb_options(
        write_buffer_size=64 * 1024,
        target_file_size=64 * 1024,
        max_bytes_for_level_base=256 * 1024,
    )
    options.group_commit = False
    engine = run_process(env, LSMEngine.open(env, "db", options))
    leaders = []
    original_lead = engine.coordinator._lead

    def recording_lead(writer):
        leaders.append(writer.ctx.name)
        return original_lead(writer)

    engine.coordinator._lead = recording_lead

    def writer(i):
        ctx = env.cpu.new_thread("writer-%d" % i)
        # Tiny stagger fixes arrival order without letting writes finish.
        yield env.sim.timeout(i * 1e-9)
        yield from engine.put(ctx, b"key-%d" % i, b"value-%d" % i)

    for i in range(6):
        env.sim.spawn(writer(i), "w%d" % i)
    env.sim.run()
    assert leaders == ["writer-%d" % i for i in range(6)]


# ---------------------------------------------------------------------------
# perturb helpers
# ---------------------------------------------------------------------------


def test_fingerprint_is_order_insensitive_for_dicts():
    assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
    assert fingerprint({"a": 1}) != fingerprint({"a": 2})


def test_diff_paths_locates_differences():
    a = {"qps": 100, "nested": {"p99": 5, "same": 1}, "list": [1, 2]}
    b = {"qps": 101, "nested": {"p99": 6, "same": 1}, "list": [1, 3]}
    diffs = "\n".join(diff_paths(a, b))
    assert "$.qps" in diffs and "$.nested.p99" in diffs and "$.list[1]" in diffs
    assert "same" not in diffs


def test_run_perturbed_returns_results_on_success():
    results = run_perturbed(lambda seed: {"ok": True}, seeds=(1, 2))
    assert results == {1: {"ok": True}, 2: {"ok": True}}
