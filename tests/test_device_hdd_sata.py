"""Device-preset behavioural tests: the HDD/SATA/NVMe models must order
themselves the way the paper's Figure 1 hardware does."""

import pytest

from repro.sim import HDD_WD100EFAX, OPTANE_905P, SATA_860PRO, Simulator, StorageDevice


def one_io_time(spec, kind, nbytes, random):
    sim = Simulator()
    device = StorageDevice(sim, spec)
    done = []

    def proc():
        yield device.submit(kind, nbytes, random=random)
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    return done[0]


class TestPresetOrdering:
    def test_random_read_latency_ordering(self):
        hdd = one_io_time(HDD_WD100EFAX, "read", 4096, random=True)
        sata = one_io_time(SATA_860PRO, "read", 4096, random=True)
        nvme = one_io_time(OPTANE_905P, "read", 4096, random=True)
        assert hdd > sata > nvme
        # The paper's ~2 orders of magnitude random-IO gap.
        assert hdd / nvme > 100

    def test_sequential_write_bandwidth_ordering(self):
        mb = 1 << 20
        hdd = one_io_time(HDD_WD100EFAX, "write", 8 * mb, random=False)
        sata = one_io_time(SATA_860PRO, "write", 8 * mb, random=False)
        nvme = one_io_time(OPTANE_905P, "write", 8 * mb, random=False)
        assert hdd > sata > nvme
        # Sequential gap is ~1 order of magnitude, not 2 (paper Section 3.1).
        assert 5 < hdd / nvme < 40

    def test_hdd_sequential_vs_random(self):
        seq = one_io_time(HDD_WD100EFAX, "read", 4096, random=False)
        rnd = one_io_time(HDD_WD100EFAX, "read", 4096, random=True)
        assert rnd / seq > 5  # seek dominates

    def test_nvme_random_penalty_negligible(self):
        seq = one_io_time(OPTANE_905P, "read", 4096, random=False)
        rnd = one_io_time(OPTANE_905P, "read", 4096, random=True)
        assert rnd == pytest.approx(seq)

    def test_nvme_4k_iops_in_spec_ballpark(self):
        """Optane 905p is rated ~575K 4K random-read IOPS; the model's
        channel-parallel setup phase should land within 2x of that."""
        sim = Simulator()
        device = StorageDevice(sim, OPTANE_905P)
        n_ios = 2000
        done = []

        def proc():
            yield device.read(4096, random=True)
            done.append(1)

        for _ in range(n_ios):
            sim.spawn(proc())
        sim.run()
        iops = n_ios / sim.now
        assert 250e3 < iops < 1.2e6

    def test_aggregate_write_bandwidth_honors_spec(self):
        sim = Simulator()
        device = StorageDevice(sim, OPTANE_905P)
        total = 64 * (1 << 20)

        def proc():
            yield device.write(total // 16, random=False)

        for _ in range(16):
            sim.spawn(proc())
        sim.run()
        achieved = total / sim.now
        assert achieved <= OPTANE_905P.write_bandwidth * 1.001
        assert achieved >= OPTANE_905P.write_bandwidth * 0.8
