"""Functional tests of the LSM engine: point ops, batches, scans, MVCC."""

import pytest

from repro.engine import LSMEngine, WriteBatch, rocksdb_options, leveldb_options
from tests.conftest import run_process


def key(i):
    return b"key%08d" % i


def value(i):
    return b"value%08d" % i


def open_engine(env, name="db", options=None):
    return run_process(env, LSMEngine.open(env, name, options))


def user(env, name="user"):
    return env.cpu.new_thread(name)


class TestPointOps:
    def test_put_then_get(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            yield from engine.put(ctx, b"hello", b"world")
            return (yield from engine.get(ctx, b"hello"))

        assert run_process(env, work()) == b"world"

    def test_get_missing_returns_none(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            return (yield from engine.get(ctx, b"nope"))

        assert run_process(env, work()) is None

    def test_overwrite(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            yield from engine.put(ctx, b"k", b"v1")
            yield from engine.put(ctx, b"k", b"v2")
            return (yield from engine.get(ctx, b"k"))

        assert run_process(env, work()) == b"v2"

    def test_delete(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            yield from engine.put(ctx, b"k", b"v")
            yield from engine.delete(ctx, b"k")
            return (yield from engine.get(ctx, b"k"))

        assert run_process(env, work()) is None

    def test_time_advances_with_writes(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            for i in range(100):
                yield from engine.put(ctx, key(i), value(i))

        run_process(env, work())
        # 100 writes at ~5 us each should land in the 0.1 ms - 10 ms range.
        assert 1e-4 < env.sim.now < 1e-2


class TestWriteBatch:
    def test_batch_applies_atomically(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            batch = WriteBatch()
            for i in range(10):
                batch.put(key(i), value(i))
            batch.delete(key(5))
            yield from engine.write(ctx, batch)
            out = []
            for i in range(10):
                out.append((yield from engine.get(ctx, key(i))))
            return out

        out = run_process(env, work())
        assert out[5] is None
        assert out[3] == value(3)

    def test_batch_roundtrip_encoding(self):
        batch = WriteBatch().put(b"a", b"1").delete(b"b").put(b"c", b"3")
        decoded = WriteBatch.decode(batch.encode())
        assert list(decoded) == list(batch)

    def test_empty_batch_is_noop(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            yield from engine.write(ctx, WriteBatch())

        run_process(env, work())
        assert engine.counters.get("write_requests") == 0


class TestMultiGet:
    def test_multiget_returns_in_order(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            for i in range(20):
                yield from engine.put(ctx, key(i), value(i))
            return (
                yield from engine.multiget(ctx, [key(3), b"missing", key(7)])
            )

        assert run_process(env, work()) == [value(3), None, value(7)]

    def test_multiget_duplicate_keys(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            yield from engine.put(ctx, b"k", b"v")
            return (yield from engine.multiget(ctx, [b"k", b"k"]))

        assert run_process(env, work()) == [b"v", b"v"]


class TestFlushAndCompaction:
    def test_writes_trigger_flush_to_l0(self, env):
        options = rocksdb_options(write_buffer_size=4096)
        engine = open_engine(env, options=options)
        ctx = user(env)

        def work():
            for i in range(500):
                yield from engine.put(ctx, key(i), value(i))

        run_process(env, work())
        assert engine.counters.get("flushes") > 0
        assert env.device.bytes_by_category.get("flush") > 0

    def test_data_survives_flush(self, env):
        options = rocksdb_options(write_buffer_size=4096)
        engine = open_engine(env, options=options)
        ctx = user(env)

        def work():
            for i in range(500):
                yield from engine.put(ctx, key(i), value(i))
            out = []
            for i in (0, 123, 499):
                out.append((yield from engine.get(ctx, key(i))))
            return out

        assert run_process(env, work()) == [value(0), value(123), value(499)]

    def test_compaction_happens_under_load(self, env):
        options = rocksdb_options(
            write_buffer_size=2048,
            target_file_size=2048,
            max_bytes_for_level_base=8192,
            l0_compaction_trigger=2,
        )
        engine = open_engine(env, options=options)
        ctx = user(env)

        def work():
            for i in range(2000):
                yield from engine.put(ctx, key(i % 700), value(i))

        run_process(env, work())
        assert engine.counters.get("compactions") > 0
        assert env.device.bytes_by_category.get("compaction") > 0

    def test_reads_correct_after_compaction(self, env):
        options = rocksdb_options(
            write_buffer_size=2048,
            target_file_size=2048,
            max_bytes_for_level_base=8192,
            l0_compaction_trigger=2,
        )
        engine = open_engine(env, options=options)
        ctx = user(env)

        def work():
            for round_no in range(3):
                for i in range(400):
                    yield from engine.put(ctx, key(i), b"round%d-%d" % (round_no, i))
            out = []
            for i in (0, 57, 399):
                out.append((yield from engine.get(ctx, key(i))))
            return out

        out = run_process(env, work())
        assert out == [b"round2-0", b"round2-57", b"round2-399"]

    def test_deleted_keys_stay_deleted_through_compaction(self, env):
        options = rocksdb_options(
            write_buffer_size=2048,
            target_file_size=2048,
            max_bytes_for_level_base=8192,
            l0_compaction_trigger=2,
        )
        engine = open_engine(env, options=options)
        ctx = user(env)

        def work():
            for i in range(300):
                yield from engine.put(ctx, key(i), value(i))
            for i in range(0, 300, 2):
                yield from engine.delete(ctx, key(i))
            # More churn to force flush/compaction of the tombstones.
            for i in range(300, 600):
                yield from engine.put(ctx, key(i), value(i))
            out = []
            for i in (0, 2, 1, 3, 299):
                out.append((yield from engine.get(ctx, key(i))))
            return out

        out = run_process(env, work())
        assert out[0] is None and out[1] is None
        assert out[2] == value(1) and out[3] == value(3) and out[4] == value(299)


class TestScans:
    def test_scan_returns_sorted_pairs(self, env):
        engine = open_engine(env, options=rocksdb_options(write_buffer_size=4096))
        ctx = user(env)

        def work():
            for i in range(200):
                yield from engine.put(ctx, key(i), value(i))
            return (yield from engine.scan(ctx, key(50), 10))

        pairs = run_process(env, work())
        assert pairs == [(key(i), value(i)) for i in range(50, 60)]

    def test_scan_skips_deleted(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            for i in range(20):
                yield from engine.put(ctx, key(i), value(i))
            yield from engine.delete(ctx, key(5))
            return (yield from engine.scan(ctx, key(4), 3))

        pairs = run_process(env, work())
        assert pairs == [(key(4), value(4)), (key(6), value(6)), (key(7), value(7))]

    def test_scan_sees_newest_version(self, env):
        engine = open_engine(env, options=rocksdb_options(write_buffer_size=2048))
        ctx = user(env)

        def work():
            for i in range(100):
                yield from engine.put(ctx, key(i), b"old")
            for i in range(100):
                yield from engine.put(ctx, key(i), b"new")
            return (yield from engine.scan(ctx, key(0), 5))

        pairs = run_process(env, work())
        assert all(v == b"new" for _, v in pairs)

    def test_range_query_bounds_inclusive(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            for i in range(30):
                yield from engine.put(ctx, key(i), value(i))
            return (yield from engine.range_query(ctx, key(10), key(12)))

        pairs = run_process(env, work())
        assert [k for k, _ in pairs] == [key(10), key(11), key(12)]

    def test_scan_past_end(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            yield from engine.put(ctx, b"a", b"1")
            return (yield from engine.scan(ctx, b"z", 5))

        assert run_process(env, work()) == []


class TestSnapshots:
    def test_snapshot_isolates_reads(self, env):
        engine = open_engine(env)
        ctx = user(env)

        def work():
            yield from engine.put(ctx, b"k", b"v1")
            snap = engine.snapshot()
            yield from engine.put(ctx, b"k", b"v2")
            at_snap = yield from engine.get(ctx, b"k", snapshot_seq=snap)
            latest = yield from engine.get(ctx, b"k")
            engine.release_snapshot(snap)
            return at_snap, latest

        assert run_process(env, work()) == (b"v1", b"v2")

    def test_snapshot_survives_flush_and_compaction(self, env):
        options = rocksdb_options(
            write_buffer_size=2048,
            target_file_size=2048,
            max_bytes_for_level_base=8192,
            l0_compaction_trigger=2,
        )
        engine = open_engine(env, options=options)
        ctx = user(env)

        def work():
            yield from engine.put(ctx, b"pinned", b"v1")
            snap = engine.snapshot()
            for i in range(1000):
                yield from engine.put(ctx, key(i % 100), value(i))
            yield from engine.put(ctx, b"pinned", b"v2")
            for i in range(1000):
                yield from engine.put(ctx, key(i % 100), value(i))
            at_snap = yield from engine.get(ctx, b"pinned", snapshot_seq=snap)
            latest = yield from engine.get(ctx, b"pinned")
            engine.release_snapshot(snap)
            return at_snap, latest

        assert run_process(env, work()) == (b"v1", b"v2")


class TestLevelDBPreset:
    def test_leveldb_options_work_end_to_end(self, env):
        engine = open_engine(env, options=leveldb_options(write_buffer_size=4096))
        ctx = user(env)

        def work():
            for i in range(300):
                yield from engine.put(ctx, key(i), value(i))
            return (yield from engine.get(ctx, key(250)))

        assert run_process(env, work()) == value(250)
