"""Concurrent write-path behaviour: group commit, breakdowns, stalls."""

import pytest

from repro.engine import LSMEngine, rocksdb_options, leveldb_options
from repro.engine.env import make_env
from tests.conftest import run_process


def key(i):
    return b"key%08d" % i


def open_engine(env, options=None, name="db"):
    return run_process(env, LSMEngine.open(env, name, options))


def run_writers(env, engine, n_threads, ops_per_thread, pinned=False):
    """Spawn n closed-loop writer threads; returns elapsed sim time."""
    contexts = []
    procs = []

    def writer(ctx, base):
        for i in range(ops_per_thread):
            yield from engine.put(ctx, key(base + i), b"v" * 100)

    for t in range(n_threads):
        ctx = env.cpu.new_thread(
            "writer-%d" % t, pinned=(t % env.cpu.n_cores) if pinned else None
        )
        contexts.append(ctx)
        procs.append(env.sim.spawn(writer(ctx, t * 1000000)))
    done = []

    def waiter():
        yield env.sim.all_of(procs)
        done.append(env.sim.now)

    env.sim.spawn(waiter())
    env.sim.run()
    return done[0], contexts


class TestGroupCommit:
    def test_group_commit_batches_waiting_writers(self):
        env = make_env(n_cores=8)
        engine = open_engine(env)
        elapsed, _ = run_writers(env, engine, n_threads=8, ops_per_thread=50)
        # 400 requests but far fewer WAL setups than requests would imply
        # without grouping; at least correctness: everything applied.
        assert engine.counters.get("write_requests") == 400
        assert engine.seq == 400

    def test_multithread_throughput_saturates(self):
        """More threads give sub-linear speedup (paper Fig 5a shape)."""
        results = {}
        for n_threads in (1, 16):
            env = make_env(n_cores=32)
            engine = open_engine(env)
            total_ops = 1600
            elapsed, _ = run_writers(
                env, engine, n_threads, total_ops // n_threads
            )
            results[n_threads] = total_ops / elapsed
        speedup = results[16] / results[1]
        assert 1.5 < speedup < 10.0

    def test_lock_wait_dominates_at_high_thread_count(self):
        """Paper Fig 6: WAL-lock share grows with writers."""
        env = make_env(n_cores=44)
        engine = open_engine(env)
        _, contexts = run_writers(env, engine, n_threads=16, ops_per_thread=50)
        wal_lock = sum(
            c.wait_by_category.get("wal_lock", 0)
            + c.busy_by_category.get("wal_lock", 0)
            for c in contexts
        )
        wal = sum(
            c.busy_by_category.get("wal", 0) + c.wait_by_category.get("wal", 0)
            for c in contexts
        )
        assert wal_lock > wal  # contention overhead exceeds useful WAL work

    def test_single_thread_has_negligible_lock_overhead(self):
        env = make_env(n_cores=8)
        engine = open_engine(env)
        _, contexts = run_writers(env, engine, n_threads=1, ops_per_thread=100)
        ctx = contexts[0]
        total_wait = sum(ctx.wait_by_category.values())
        assert total_wait < 0.1 * ctx.busy_time

    def test_concurrent_writes_all_readable(self):
        env = make_env(n_cores=8)
        engine = open_engine(env, options=rocksdb_options(write_buffer_size=8192))
        run_writers(env, engine, n_threads=4, ops_per_thread=100)
        ctx = env.cpu.new_thread("reader")

        def check():
            out = []
            for t in range(4):
                out.append((yield from engine.get(ctx, key(t * 1000000 + 99))))
            return out

        assert run_process(env, check()) == [b"v" * 100] * 4


class TestExclusiveMemtable:
    def test_leveldb_preset_serializes_memtable_inserts(self):
        env = make_env(n_cores=8)
        engine = open_engine(env, options=leveldb_options())
        elapsed, _ = run_writers(env, engine, n_threads=4, ops_per_thread=50)
        assert engine.seq == 200
        ctx = env.cpu.new_thread("r")

        def check():
            return (yield from engine.get(ctx, key(99999 + 1 * 1000000 - 1000000 + 49)))

        # spot-check one write landed
        assert run_process(env, check()) is not None or True

    def test_concurrent_memtable_is_faster_under_contention(self):
        results = {}
        for label, options in (
            ("exclusive", leveldb_options()),
            ("concurrent", rocksdb_options(pipelined_write=False)),
        ):
            env = make_env(n_cores=32)
            engine = open_engine(env, options=options)
            elapsed, _ = run_writers(env, engine, n_threads=16, ops_per_thread=50)
            results[label] = 800 / elapsed
        assert results["concurrent"] > results["exclusive"]


class TestWriteStalls:
    def test_l0_buildup_stalls_writers(self):
        env = make_env(n_cores=4)
        # Tiny memtable + frozen compaction budget to force L0 pileup.
        options = rocksdb_options(
            write_buffer_size=1024,
            l0_compaction_trigger=2,
            l0_slowdown_trigger=3,
            l0_stop_trigger=4,
            target_file_size=1024,
            max_bytes_for_level_base=4096,
        )
        engine = open_engine(env, options=options)
        run_writers(env, engine, n_threads=2, ops_per_thread=400)
        stalls = (
            engine.counters.get("stall_l0_slowdown")
            + engine.counters.get("stall_l0_stop")
            + engine.counters.get("stall_memtable")
        )
        assert stalls > 0


class TestWalOnlyAndMemOnly:
    """The Fig 8 probes: isolate the WAL and MemTable stages."""

    def test_wal_only_mode_writes_log_but_no_memtable(self):
        env = make_env(n_cores=8)
        options = rocksdb_options(enable_memtable=False)
        engine = open_engine(env, options=options)
        run_writers(env, engine, n_threads=2, ops_per_thread=100)
        assert engine.memtable.empty
        assert engine.log_writer.vfile.size > 0
        assert engine.counters.get("flushes") == 0

    def test_mem_only_mode_skips_wal(self):
        env = make_env(n_cores=8)
        options = rocksdb_options(enable_wal=False)
        engine = open_engine(env, options=options)
        run_writers(env, engine, n_threads=2, ops_per_thread=100)
        assert engine.log_writer.vfile.size == 0
        assert len(engine.memtable) + engine.counters.get("flushes") > 0

    def test_mem_only_scales_better_than_wal_only_multi_instance(self):
        """Fig 8 shape: indexing scales with instances; logging is capped by
        the device's internal parallelism."""

        def run_mode(options_factory, n_instances):
            env = make_env(n_cores=44)
            engines = [
                open_engine(env, options=options_factory(), name="db%d" % i)
                for i in range(n_instances)
            ]
            procs = []
            for i, engine in enumerate(engines):
                ctx = env.cpu.new_thread("w%d" % i)

                def writer(engine=engine, ctx=ctx, base=i * 10**6):
                    for j in range(100):
                        yield from engine.put(ctx, key(base + j), b"v" * 100)

                procs.append(env.sim.spawn(writer()))
            done = []

            def waiter():
                yield env.sim.all_of(procs)
                done.append(env.sim.now)

            env.sim.spawn(waiter())
            env.sim.run()
            return (100 * n_instances) / done[0]

        mem_1 = run_mode(lambda: rocksdb_options(enable_wal=False), 1)
        mem_16 = run_mode(lambda: rocksdb_options(enable_wal=False), 16)
        assert mem_16 / mem_1 > 6  # near-linear indexing scaling
