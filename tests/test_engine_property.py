"""Property-based tests: the engine must behave like a dict under any op mix,
including across flush/compaction and crash-recovery boundaries."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import LSMEngine, rocksdb_options
from repro.engine.env import make_env
from tests.conftest import run_process

KEYS = [b"key%04d" % i for i in range(40)]

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS), st.binary(min_size=1, max_size=32)),
        st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just(b"")),
    ),
    max_size=120,
)

# A tiny LSM shape so even short op sequences cross flush/compaction edges.
TINY = dict(
    write_buffer_size=512,
    target_file_size=512,
    max_bytes_for_level_base=2048,
    l0_compaction_trigger=2,
)


def apply_ops(env, engine, ctx, ops, model):
    def work():
        for op, key, value in ops:
            if op == "put":
                yield from engine.put(ctx, key, value)
                model[key] = value
            else:
                yield from engine.delete(ctx, key)
                model.pop(key, None)

    run_process(env, work())


def check_model(env, engine, ctx, model):
    def verify():
        for key in KEYS:
            got = yield from engine.get(ctx, key)
            assert got == model.get(key), (key, got, model.get(key))
        return True

    assert run_process(env, verify())


@given(ops=ops_strategy)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_matches_dict_model(ops):
    env = make_env(n_cores=4)
    engine = run_process(env, LSMEngine.open(env, "db", rocksdb_options(**TINY)))
    ctx = env.cpu.new_thread("u")
    model = {}
    apply_ops(env, engine, ctx, ops, model)
    check_model(env, engine, ctx, model)


@given(ops=ops_strategy)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_matches_dict_model_after_crash_with_close(ops):
    """With a clean close (WAL synced), recovery must restore the full model."""
    env = make_env(n_cores=4)
    engine = run_process(env, LSMEngine.open(env, "db", rocksdb_options(**TINY)))
    ctx = env.cpu.new_thread("u")
    model = {}
    apply_ops(env, engine, ctx, ops, model)
    run_process(env, engine.close())
    env.disk.crash()
    engine2 = run_process(env, LSMEngine.open(env, "db", rocksdb_options(**TINY)))
    ctx2 = env.cpu.new_thread("u2")
    check_model(env, engine2, ctx2, model)


@given(ops=ops_strategy)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_crash_without_sync_loses_only_a_suffix(ops):
    """Async logging may lose recent writes but never corrupts or reorders:
    the recovered state must equal the model of some *prefix* of the ops."""
    env = make_env(n_cores=4)
    engine = run_process(env, LSMEngine.open(env, "db", rocksdb_options(**TINY)))
    ctx = env.cpu.new_thread("u")
    apply_ops(env, engine, ctx, ops, {})
    env.disk.crash()
    engine2 = run_process(env, LSMEngine.open(env, "db", rocksdb_options(**TINY)))
    ctx2 = env.cpu.new_thread("u2")

    # Build the set of states reachable from prefixes of the op sequence.
    prefix_states = []
    model = {}
    prefix_states.append(dict(model))
    for op, key, value in ops:
        if op == "put":
            model[key] = value
        else:
            model.pop(key, None)
        prefix_states.append(dict(model))

    def read_state():
        state = {}
        for key in KEYS:
            got = yield from engine2.get(ctx2, key)
            if got is not None:
                state[key] = got
        return state

    recovered = run_process(env, read_state())
    assert recovered in prefix_states
