"""Concurrency-correctness tests: readers racing writers, flushes and
compactions must always see consistent MVCC state."""

import pytest

from repro.engine import LSMEngine, WriteBatch, rocksdb_options
from repro.engine.env import make_env
from tests.conftest import run_process

TINY = dict(
    write_buffer_size=2048,
    target_file_size=2048,
    max_bytes_for_level_base=8192,
    l0_compaction_trigger=2,
)


def key(i):
    return b"user%08d" % i


def open_engine(env):
    return run_process(env, LSMEngine.open(env, "db", rocksdb_options(**TINY)))


class TestReadersVsWriters:
    def test_reader_sees_monotonic_versions(self):
        """A key is updated with increasing version stamps; any concurrent
        reader must observe a non-decreasing sequence of stamps."""
        env = make_env(n_cores=8)
        engine = open_engine(env)
        writer_ctx = env.cpu.new_thread("writer")
        reader_ctx = env.cpu.new_thread("reader")
        seen = []

        def writer():
            for version in range(200):
                yield from engine.put(writer_ctx, b"hot", b"%06d" % version)
                # interleave other traffic to force flushes/compactions
                yield from engine.put(writer_ctx, key(version), b"x" * 64)

        def reader():
            for _ in range(150):
                value = yield from engine.get(reader_ctx, b"hot")
                if value is not None:
                    seen.append(int(value))
                yield env.sim.timeout(1e-6)

        env.sim.spawn(writer())
        env.sim.spawn(reader())
        env.sim.run()
        assert seen, "reader never observed the key"
        assert seen == sorted(seen), "versions went backwards"

    def test_batch_atomicity_under_concurrent_reads(self):
        """Readers must never observe half of a WriteBatch: the two keys are
        always equal when read inside one snapshot."""
        env = make_env(n_cores=8)
        engine = open_engine(env)
        writer_ctx = env.cpu.new_thread("writer")
        reader_ctx = env.cpu.new_thread("reader")
        anomalies = []

        def writer():
            for version in range(150):
                stamp = b"%06d" % version
                batch = WriteBatch().put(b"left", stamp).put(b"right", stamp)
                yield from engine.write(writer_ctx, batch)

        def reader():
            for _ in range(120):
                snap = engine.snapshot()
                left = yield from engine.get(reader_ctx, b"left", snapshot_seq=snap)
                right = yield from engine.get(reader_ctx, b"right", snapshot_seq=snap)
                engine.release_snapshot(snap)
                if left != right:
                    anomalies.append((left, right))
                yield env.sim.timeout(1e-6)

        env.sim.spawn(writer())
        env.sim.spawn(reader())
        env.sim.run()
        assert anomalies == []

    def test_scan_consistency_during_writes(self):
        """A snapshot scan running concurrently with writes returns exactly
        the keys visible at the snapshot."""
        env = make_env(n_cores=8)
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def setup():
            for i in range(100):
                yield from engine.put(ctx, key(i), b"base")

        run_process(env, setup())
        snap = engine.snapshot()
        results = []
        writer_ctx = env.cpu.new_thread("w")
        reader_ctx = env.cpu.new_thread("r")

        def writer():
            for i in range(100, 250):
                yield from engine.put(writer_ctx, key(i), b"after")
            for i in range(0, 40):
                yield from engine.delete(writer_ctx, key(i))

        def scanner():
            yield env.sim.timeout(50e-6)  # land mid-write-storm
            pairs = yield from engine.scan(
                reader_ctx, key(0), 1000, snapshot_seq=snap
            )
            results.append(pairs)

        env.sim.spawn(writer())
        env.sim.spawn(scanner())
        env.sim.run()
        engine.release_snapshot(snap)
        pairs = results[0]
        assert [k for k, _ in pairs] == [key(i) for i in range(100)]
        assert all(v == b"base" for _, v in pairs)

    def test_many_concurrent_writers_never_lose_a_write(self):
        env = make_env(n_cores=16)
        engine = open_engine(env)
        n_threads, per_thread = 8, 60

        def writer(tid):
            ctx = env.cpu.new_thread("w%d" % tid)
            for i in range(per_thread):
                yield from engine.put(ctx, key(tid * 1000 + i), b"t%d" % tid)

        for tid in range(n_threads):
            env.sim.spawn(writer(tid))
        env.sim.run()
        ctx = env.cpu.new_thread("checker")

        def check():
            missing = 0
            for tid in range(n_threads):
                for i in range(per_thread):
                    got = yield from engine.get(ctx, key(tid * 1000 + i))
                    if got != b"t%d" % tid:
                        missing += 1
            return missing

        assert run_process(env, check()) == 0

    def test_seqno_unique_and_dense_under_concurrency(self):
        env = make_env(n_cores=8)
        engine = open_engine(env)

        def writer(tid):
            ctx = env.cpu.new_thread("w%d" % tid)
            for i in range(50):
                yield from engine.put(ctx, key(tid * 100 + i), b"v")

        for tid in range(4):
            env.sim.spawn(writer(tid))
        env.sim.run()
        assert engine.seq == 200  # no gaps, no duplicates
