"""Crash-recovery tests: WAL replay, manifest rebuild, lost unsynced tails."""

from repro.engine import LSMEngine, WriteBatch, rocksdb_options
from repro.storage.wal import RECORD_TXN
from tests.conftest import run_process


def key(i):
    return b"key%08d" % i


def value(i):
    return b"value%08d" % i


def open_engine(env, name="db", options=None, record_filter=None):
    return run_process(env, LSMEngine.open(env, name, options, record_filter))


class TestRecovery:
    def test_synced_writes_survive_crash(self, env):
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(50):
                yield from engine.put(ctx, key(i), value(i))
            yield from engine.log_writer.flush("wal")  # make the WAL durable

        run_process(env, work())
        env.disk.crash()
        engine2 = open_engine(env)
        ctx2 = env.cpu.new_thread("u2")

        def check():
            out = []
            for i in (0, 25, 49):
                out.append((yield from engine2.get(ctx2, key(i))))
            return out

        assert run_process(env, check()) == [value(0), value(25), value(49)]

    def test_unsynced_tail_lost_on_crash(self, env):
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            yield from engine.put(ctx, b"durable", b"yes")
            yield from engine.log_writer.flush("wal")
            yield from engine.put(ctx, b"volatile", b"gone")
            # No flush: this record sits in the buffered WAL tail.

        run_process(env, work())
        env.disk.crash()
        engine2 = open_engine(env)
        ctx2 = env.cpu.new_thread("u2")

        def check():
            a = yield from engine2.get(ctx2, b"durable")
            b = yield from engine2.get(ctx2, b"volatile")
            return a, b

        assert run_process(env, check()) == (b"yes", None)

    def test_flushed_sstables_survive_without_wal(self, env):
        options = rocksdb_options(write_buffer_size=2048)
        engine = open_engine(env, options=options)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(500):
                yield from engine.put(ctx, key(i), value(i))

        run_process(env, work())
        assert engine.counters.get("flushes") > 0
        env.disk.crash()
        engine2 = open_engine(env, options=options)
        ctx2 = env.cpu.new_thread("u2")

        def check():
            # Early keys were flushed into SSTables; they must survive even
            # though their WAL segments were deleted after the flush.
            return (yield from engine2.get(ctx2, key(0)))

        assert run_process(env, check()) == value(0)

    def test_close_makes_everything_durable(self, env):
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(20):
                yield from engine.put(ctx, key(i), value(i))
            yield from engine.close()

        run_process(env, work())
        env.disk.crash()
        engine2 = open_engine(env)
        ctx2 = env.cpu.new_thread("u2")

        def check():
            out = []
            for i in range(20):
                out.append((yield from engine2.get(ctx2, key(i))))
            return out

        assert run_process(env, check()) == [value(i) for i in range(20)]

    def test_deletes_survive_recovery(self, env):
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            yield from engine.put(ctx, b"k", b"v")
            yield from engine.delete(ctx, b"k")
            yield from engine.close()

        run_process(env, work())
        env.disk.crash()
        engine2 = open_engine(env)
        ctx2 = env.cpu.new_thread("u2")

        def check():
            return (yield from engine2.get(ctx2, b"k"))

        assert run_process(env, check()) is None

    def test_double_crash_recovery(self, env):
        """Recovery itself must leave a recoverable image."""
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(30):
                yield from engine.put(ctx, key(i), value(i))
            yield from engine.close()

        run_process(env, work())
        env.disk.crash()
        open_engine(env)  # first recovery re-logs the memtable
        env.disk.crash()
        engine3 = open_engine(env)
        ctx3 = env.cpu.new_thread("u3")

        def check():
            return (yield from engine3.get(ctx3, key(29)))

        assert run_process(env, check()) == value(29)

    def test_record_filter_drops_uncommitted_txn_records(self, env):
        """The hook p2KVS's GSN rollback uses (paper Section 4.5)."""
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            yield from engine.write(
                ctx, WriteBatch().put(b"committed", b"1"), gsn=1, rtype=RECORD_TXN
            )
            yield from engine.write(
                ctx, WriteBatch().put(b"uncommitted", b"2"), gsn=2, rtype=RECORD_TXN
            )
            yield from engine.close()

        run_process(env, work())
        env.disk.crash()

        committed_gsns = {1}

        def keep(rtype, gsn):
            return rtype != RECORD_TXN or gsn in committed_gsns

        engine2 = open_engine(env, record_filter=keep)
        ctx2 = env.cpu.new_thread("u2")

        def check():
            a = yield from engine2.get(ctx2, b"committed")
            b = yield from engine2.get(ctx2, b"uncommitted")
            return a, b

        assert run_process(env, check()) == (b"1", None)

    def test_seq_resumes_after_recovery(self, env):
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(10):
                yield from engine.put(ctx, key(i), value(i))
            yield from engine.close()

        run_process(env, work())
        env.disk.crash()
        engine2 = open_engine(env)
        assert engine2.seq >= 10
        ctx2 = env.cpu.new_thread("u2")

        def more():
            yield from engine2.put(ctx2, key(0), b"newer")
            return (yield from engine2.get(ctx2, key(0)))

        assert run_process(env, more()) == b"newer"
