"""Smoke tests: the runnable examples must keep working end-to-end.

Only the fast examples run here (the YCSB shoot-out and the full bottleneck
sweep live in the benchmark tier); each example asserts its own invariants
internally, so a clean exit is a meaningful check.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/crash_recovery.py",
    "examples/transactions_and_scaling.py",
    "examples/device_timeline.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs_clean(path, capsys):
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "example produced no output"


def test_quickstart_output_content(capsys):
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "GET user:1          -> b'alice'" in out
    assert "async writes completed: 1000 of 1000" in out
    assert "simulated write throughput" in out


def test_crash_recovery_output_content(capsys):
    runpy.run_path("examples/crash_recovery.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "Tx A intact:       True" in out
    assert "Tx B rolled back:  True" in out
    assert "Tx C rolled back:  True" in out
