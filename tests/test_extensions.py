"""Tests for the paper's future-work extensions we implemented:
read-committed snapshot isolation (Section 4.5) and runtime worker scaling
(Section 4.2)."""

import pytest

from repro.baselines import wiredtiger_adapter_factory
from repro.core import P2KVS
from repro.engine import WriteBatch
from tests.conftest import run_process


def key(i):
    return b"user%012d" % i


def open_p2kvs(env, **kwargs):
    kwargs.setdefault("n_workers", 4)
    return run_process(env, P2KVS.open(env, **kwargs))


def multi_instance_batch(kvs, items):
    batch = WriteBatch()
    for k, v in items:
        batch.put(k, v)
    assert len({kvs.router.route(k) for k, _ in items}) > 1
    return batch


class TestReadCommitted:
    def test_committed_updates_become_visible(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")
        items = [(key(i), b"v%d" % i) for i in range(12)]

        def work():
            yield from kvs.write_batch(
                ctx, multi_instance_batch(kvs, items), isolation="read_committed"
            )
            out = []
            for k, _ in items:
                out.append((yield from kvs.get(ctx, k)))
            return out

        assert run_process(env, work()) == [v for _, v in items]

    def test_reader_does_not_see_dirty_uncommitted_writes(self, env):
        """A reader racing the transaction either sees all-old or all-new,
        never a mix (no dirty reads)."""
        kvs = open_p2kvs(env)
        writer_ctx = env.cpu.new_thread("writer")
        reader_ctx = env.cpu.new_thread("reader")
        items = [(key(i), b"new") for i in range(12)]

        def setup():
            for k, _ in items:
                yield from kvs.put(writer_ctx, k, b"old")

        run_process(env, setup())

        observations = []

        def txn():
            yield from kvs.write_batch(
                ctx=writer_ctx,
                batch=multi_instance_batch(kvs, items),
                isolation="read_committed",
            )

        def reader():
            # Poll the keys repeatedly while the transaction runs.
            for _ in range(30):
                snapshot = []
                for k, _ in items:
                    snapshot.append((yield from kvs.get(reader_ctx, k)))
                observations.append(tuple(snapshot))
                yield env.sim.timeout(2e-6)

        env.sim.spawn(txn())
        env.sim.spawn(reader())
        env.sim.run()
        for snap in observations:
            assert set(snap) in ({b"old"}, {b"new"}), snap
        # The final state must be the committed one.
        assert observations[-1] == tuple(b"new" for _ in items)

    def test_snapshots_released_after_commit(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")
        items = [(key(i), b"x") for i in range(12)]

        def work():
            yield from kvs.write_batch(
                ctx, multi_instance_batch(kvs, items), isolation="read_committed"
            )

        run_process(env, work())
        for worker in kvs.workers:
            assert worker.txn_snapshots == {}
            assert worker.adapter.engine.snapshots == []

    def test_rejects_unknown_isolation(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")

        def work():
            yield from kvs.write_batch(
                ctx, WriteBatch().put(b"a", b"1"), isolation="serializable"
            )

        with pytest.raises(ValueError):
            run_process(env, work())

    def test_rejects_read_committed_on_wiredtiger(self, env):
        kvs = open_p2kvs(env, adapter_open=wiredtiger_adapter_factory())
        ctx = env.cpu.new_thread("u")

        def work():
            yield from kvs.write_batch(
                ctx, WriteBatch().put(b"a", b"1"), isolation="read_committed"
            )

        with pytest.raises(ValueError, match="snapshot-capable"):
            run_process(env, work())


class TestRuntimeScaling:
    def test_add_worker_preserves_all_data(self, env):
        kvs = open_p2kvs(env, n_workers=3)
        ctx = env.cpu.new_thread("u")
        n = 120

        def load():
            for i in range(n):
                yield from kvs.put(ctx, key(i), b"v%d" % i)

        run_process(env, load())

        def grow():
            return (yield from kvs.add_worker(ctx))

        moved = run_process(env, grow())
        assert len(kvs.workers) == 4
        assert kvs.router.n_workers == 4
        assert moved > 0  # some keys had to migrate

        def verify():
            out = []
            for i in range(n):
                out.append((yield from kvs.get(ctx, key(i))))
            return out

        assert run_process(env, verify()) == [b"v%d" % i for i in range(n)]

    def test_new_worker_receives_traffic(self, env):
        kvs = open_p2kvs(env, n_workers=2)
        ctx = env.cpu.new_thread("u")

        def load():
            for i in range(60):
                yield from kvs.put(ctx, key(i), b"x")

        run_process(env, load())
        run_process(env, kvs.add_worker(ctx))

        def more():
            for i in range(60, 180):
                yield from kvs.put(ctx, key(i), b"y")

        run_process(env, more())
        new_worker = kvs.workers[-1]
        assert new_worker.counters.get("requests") > 0

    def test_range_query_correct_after_scaling(self, env):
        kvs = open_p2kvs(env, n_workers=2)
        ctx = env.cpu.new_thread("u")

        def load():
            for i in range(80):
                yield from kvs.put(ctx, key(i), b"v%d" % i)

        run_process(env, load())
        run_process(env, kvs.add_worker(ctx))

        def query():
            return (yield from kvs.range_query(ctx, key(10), key(19)))

        pairs = run_process(env, query())
        assert pairs == [(key(i), b"v%d" % i) for i in range(10, 20)]

    def test_add_worker_requires_hash_router(self, env):
        from repro.core import RangeRouter

        kvs = open_p2kvs(env, n_workers=3, router=RangeRouter([key(10), key(20)]))
        ctx = env.cpu.new_thread("u")

        def grow():
            yield from kvs.add_worker(ctx)

        with pytest.raises(ValueError, match="hash router"):
            run_process(env, grow())
