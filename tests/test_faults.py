"""Tests for the fault plane: seeded device faults, crash-recovery
determinism, the shadow-map oracle, worker degradation, and the
zero-overhead off path."""

import json

import pytest

from repro.core import P2KVS
from repro.engine import LSMEngine, make_env, rocksdb_options
from repro.errors import Corruption, IOFailure, KVError, KVStatus, TimedOut
from repro.faults import (
    CrashPoint,
    CrashTriggered,
    FaultPolicy,
    ShadowMap,
    install_faults,
    restore_durable_state,
    snapshot_durable_state,
    uninstall_faults,
)
from repro.faults.retry import retry_io
from repro.sim import OPTANE_905P, Simulator, StorageDevice
from repro.storage.vfs import DiskImage
from repro.systems import describe_options, open_system, system_names
from repro.tools.faultbench import SCENARIOS, run_scenario
from tests.conftest import run_process


def key(i):
    return b"user%012d" % i


# ---------------------------------------------------------------------------
# FaultPolicy: seeded, replayable decisions
# ---------------------------------------------------------------------------


class TestFaultPolicy:
    def test_same_seed_same_schedule(self):
        a = FaultPolicy(41, error_rate=0.2, torn_rate=0.1, spike_rate=0.1)
        b = FaultPolicy(41, error_rate=0.2, torn_rate=0.1, spike_rate=0.1)
        seq_a = [a.decide("write", 4096, "wal") for _ in range(200)]
        seq_b = [b.decide("write", 4096, "wal") for _ in range(200)]
        assert [repr(x) for x in seq_a] == [repr(x) for x in seq_b]
        assert a.injected == b.injected
        assert a.total_injected > 0

    def test_kind_and_category_filters(self):
        policy = FaultPolicy(1, error_rate=1.0, kinds=("write",),
                             categories=("wal",))
        assert policy.decide("read", 100, "wal") is None
        assert policy.decide("write", 100, "flush") is None
        assert policy.decide("write", 100, "wal") is not None

    def test_max_faults_caps_injection(self):
        policy = FaultPolicy(2, error_rate=1.0, max_faults=3)
        outcomes = [policy.decide("write", 100, "wal") for _ in range(10)]
        assert sum(1 for o in outcomes if o is not None) == 3
        assert policy.total_injected == 3

    def test_torn_writes_carry_a_completed_prefix(self):
        policy = FaultPolicy(3, torn_rate=1.0)
        kind, exc = policy.decide("write", 1000, "wal")
        assert kind == "fail"
        assert isinstance(exc, IOFailure) and exc.torn
        assert 0 <= exc.completed_bytes < 1000


# ---------------------------------------------------------------------------
# VFS under injected faults
# ---------------------------------------------------------------------------


class TestVfsFaults:
    def _disk(self, policy):
        sim = Simulator()
        device = StorageDevice(sim, OPTANE_905P)
        device.fault_policy = policy
        return sim, DiskImage(sim, device)

    def test_torn_flush_advances_durable_prefix(self):
        sim, disk = self._disk(FaultPolicy(5, torn_rate=1.0))
        f = disk.open_file("wal")
        f.append(b"x" * 1000)

        def attempt():
            try:
                yield from f.flush()
            except IOFailure as exc:
                return exc
            return None

        exc = run_process_sim(sim, attempt())
        assert exc is not None and exc.torn
        # The durable prefix advanced by exactly the completed bytes.
        assert f.flushed_len == exc.completed_bytes
        assert f.durable_content() == b"x" * exc.completed_bytes

    def test_transient_error_leaves_nothing_durable(self):
        sim, disk = self._disk(FaultPolicy(6, error_rate=1.0,
                                           timeout_share=0.0))
        f = disk.open_file("wal")
        f.append(b"y" * 100)

        def attempt():
            try:
                yield from f.flush()
            except IOFailure:
                return "failed"

        assert run_process_sim(sim, attempt()) == "failed"
        assert f.flushed_len == 0
        assert f.pending_bytes == 100


def run_process_sim(sim, gen):
    box = []

    def wrapper():
        box.append((yield from gen))

    sim.spawn(wrapper())
    sim.run()
    return box[0] if box else None


# ---------------------------------------------------------------------------
# retry_io
# ---------------------------------------------------------------------------


class TestRetryIO:
    def test_retries_until_success(self, env):
        calls = []

        def make():
            def gen():
                calls.append(1)
                if len(calls) < 3:
                    raise IOFailure("flaky", site="test")
                return "done"
                yield  # pragma: no cover

            return gen()

        result = run_process(env, retry_io(env, make, site="test"))
        assert result == "done"
        assert len(calls) == 3

    def test_exhaustion_reraises_with_attempts(self, env):
        def make():
            def gen():
                raise TimedOut("always", site="test")
                yield  # pragma: no cover

            return gen()

        def attempt():
            try:
                yield from retry_io(env, make, site="test", max_attempts=2)
            except TimedOut as exc:
                return exc

        exc = run_process(env, attempt())
        assert exc.details["attempts"] == 2

    def test_non_retryable_raises_immediately(self, env):
        calls = []

        def make():
            def gen():
                calls.append(1)
                raise Corruption("bad bytes", site="test")
                yield  # pragma: no cover

            return gen()

        def attempt():
            try:
                yield from retry_io(env, make, site="test")
            except Corruption as exc:
                return exc

        assert run_process(env, attempt()) is not None
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# Crash plane
# ---------------------------------------------------------------------------


class TestCrashPlane:
    def test_crash_point_fires_on_nth_hit(self):
        env = make_env(n_cores=2)
        plane = install_faults(env, crash=CrashPoint("wal-append", 3), seed=1)
        for _ in range(2):
            plane.crash_site("wal-append")
        plane.crash_site("other-site")
        with pytest.raises(CrashTriggered) as excinfo:
            plane.crash_site("wal-append")
        assert excinfo.value.site == "wal-append"
        assert plane.snapshot is not None

    def test_crash_is_not_a_kverror(self):
        # Poison/retry paths catch KVError; a power loss must cut through.
        assert not issubclass(CrashTriggered, KVError)

    def test_snapshot_restore_roundtrip(self):
        sim = Simulator()
        disk = DiskImage(sim, StorageDevice(sim, OPTANE_905P))
        f = disk.open_file("a/wal")
        f.append(b"durable")
        run_process_sim(sim, f.flush())
        f.append(b"volatile-tail")
        disk.put_blob("a/sst-1", ("table",), 128)
        disk.commit_blob("a/sst-1")
        disk.put_blob("a/sst-2", ("orphan",), 64)  # never committed

        snapshot = snapshot_durable_state(disk)
        sim2 = Simulator()
        disk2 = DiskImage(sim2, StorageDevice(sim2, OPTANE_905P))
        restore_durable_state(disk2, snapshot)
        assert disk2.open_file("a/wal").durable_content() == b"durable"
        assert disk2.open_file("a/wal").pending_bytes == 0
        assert disk2.blob_exists("a/sst-1")
        assert not disk2.blob_exists("a/sst-2")

    def test_uninstall_restores_the_off_path(self):
        env = make_env(n_cores=2)
        install_faults(env, policy=FaultPolicy(1, error_rate=0.5), seed=1)
        assert env.faults is not None
        assert env.device.fault_policy is not None
        uninstall_faults(env)
        assert env.faults is None
        assert env.device.fault_policy is None


# ---------------------------------------------------------------------------
# The shadow-map oracle itself
# ---------------------------------------------------------------------------


class TestShadowMapOracle:
    def test_clean_history_passes(self):
        shadow = ShadowMap()
        t1 = shadow.begin([(b"k", b"v1")])
        shadow.ack(t1)
        t2 = shadow.begin([(b"k", b"v2")])
        shadow.ack(t2)
        assert shadow.verify({b"k": b"v2"}) == []

    def test_lost_ack_detected(self):
        shadow = ShadowMap()
        shadow.ack(shadow.begin([(b"k", b"v1")]))
        assert any("lost-ack" in v for v in shadow.verify({b"k": None}))

    def test_stale_ack_detected(self):
        shadow = ShadowMap()
        shadow.ack(shadow.begin([(b"k", b"v1")]))
        shadow.ack(shadow.begin([(b"k", b"v2")]))
        assert any("stale-ack" in v for v in shadow.verify({b"k": b"v1"}))

    def test_phantom_detected(self):
        shadow = ShadowMap()
        shadow.ack(shadow.begin([(b"k", b"v1")]))
        assert any("phantom" in v for v in shadow.verify({b"k": b"zzz"}))

    def test_unacked_single_may_go_either_way(self):
        shadow = ShadowMap()
        shadow.begin([(b"k", b"v1")])  # in flight at the crash
        assert shadow.verify({b"k": b"v1"}) == []
        assert shadow.verify({b"k": None}) == []

    def test_torn_group_detected(self):
        shadow = ShadowMap()
        token = shadow.begin([(b"g1", b"v1"), (b"g2", b"v2")])
        shadow.ack(token)
        violations = shadow.verify({b"g1": b"v1", b"g2": None})
        assert any("torn-group" in v for v in violations)
        assert shadow.verify({b"g1": b"v1", b"g2": b"v2"}) == []


# ---------------------------------------------------------------------------
# Crash-recovery determinism (the ISSUE's acceptance bar): crash sites x
# devices, each run twice — report and fingerprint byte-identical.
# ---------------------------------------------------------------------------


CRASH_MATRIX = [
    spec for spec in SCENARIOS
    if "crash" in spec and spec["store"] == "engine"
    and spec["crash"][0] in ("wal-append", "wal-flush", "memtable-switch")
]


class TestCrashRecoveryDeterminism:
    @pytest.mark.parametrize(
        "spec", CRASH_MATRIX, ids=[s["name"] for s in CRASH_MATRIX]
    )
    def test_crash_reopen_twice_is_byte_identical(self, spec):
        # 3 crash sites x 2 devices (see CRASH_MATRIX): the whole
        # run -> crash -> restore -> reopen -> read-back cycle must be a
        # pure function of the scenario and the fault seed.
        first = run_scenario(spec, fault_seed=7)
        second = run_scenario(spec, fault_seed=7)
        assert first["violations"] == []
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["crashed"] and first["crash_site"] == spec["crash"][0]

    def test_different_seed_different_schedule(self):
        spec = next(s for s in SCENARIOS
                    if s["name"] == "engine-nvme-transient")
        a = run_scenario(spec, fault_seed=7)
        b = run_scenario(spec, fault_seed=8)
        assert a["violations"] == [] and b["violations"] == []
        assert a["seed"] != b["seed"]

    def test_transient_faults_never_lose_acked_writes(self):
        # Regression for the pipelined-write WAL lifetime bug: a group's
        # records can land in segment N while its memtable inserts land
        # after a switch; N must survive until that memtable flushes.
        spec = next(s for s in SCENARIOS
                    if s["name"] == "engine-nvme-transient")
        report = run_scenario(spec, fault_seed=7)
        assert report["violations"] == []
        assert report["shadow"]["acked"] > 0


# ---------------------------------------------------------------------------
# Degradation: a poisoned request fails one request, not the worker
# ---------------------------------------------------------------------------


class TestWorkerDegradation:
    def test_poisoned_write_leaves_worker_alive(self, env):
        from repro.core import adapter_factory

        # sync_wal so every put reaches the device (and can be failed).
        kvs = run_process(env, P2KVS.open(
            env, n_workers=1,
            adapter_open=adapter_factory("rocksdb", sync_wal=True),
        ))
        ctx = env.cpu.new_thread("u")

        def warm():
            yield from kvs.put(ctx, b"before", b"1")

        run_process(env, warm())
        # Every WAL write now fails permanently: the put is poisoned.
        install_faults(
            env,
            policy=FaultPolicy(9, error_rate=1.0, timeout_share=0.0,
                               kinds=("write",), categories=("wal",)),
            seed=9,
        )

        def poisoned():
            try:
                yield from kvs.put(ctx, b"victim", b"2")
            except KVError as exc:
                return exc
            return None

        exc = run_process(env, poisoned())
        assert isinstance(exc, IOFailure)
        # The worker loop survived: lift the faults and keep operating.
        uninstall_faults(env)

        def after():
            yield from kvs.put(ctx, b"after", b"3")
            return (yield from kvs.get(ctx, b"after"))

        assert run_process(env, after()) == b"3"
        worker = kvs.workers[0]
        assert worker.counters.get("poisoned_requests") >= 1
        assert worker._proc.triggered is False  # loop still running


# ---------------------------------------------------------------------------
# Zero-overhead off path + status API + registry
# ---------------------------------------------------------------------------


class TestOffPath:
    def test_no_fault_run_touches_no_fault_instruments(self, env):
        assert env.faults is None
        assert env.device.fault_policy is None
        engine = run_process(env, LSMEngine.open(env, "db", rocksdb_options()))
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(32):
                yield from engine.put(ctx, key(i), b"v")
            return (yield from engine.get(ctx, key(7)))

        assert run_process(env, work()) == b"v"
        names = env.metrics.counter_values()
        assert not any(n.startswith("faults.") for n in names)
        assert not any("io_retries" in n for n in names)


class TestStatusAPI:
    def test_status_states(self):
        ok = KVStatus.ok(b"v")
        assert ok.is_ok and ok.value == b"v" and ok.value_or(None) == b"v"
        missing = KVStatus.not_found()
        assert missing.is_not_found and missing.value_or(b"d") == b"d"
        err = KVStatus.from_error(IOFailure("boom", site="x"))
        assert err.is_error
        with pytest.raises(IOFailure):
            err.raise_for_error()
        with pytest.raises(IOFailure):
            err.value_or(None)

    def test_every_registered_system_reports_statuses(self, env):
        assert {"rocksdb", "leveldb", "pebblesdb", "multi", "p2kvs",
                "kvell", "wiredtiger"} <= set(system_names())

    @pytest.mark.parametrize("name", ["rocksdb", "p2kvs", "kvell",
                                      "wiredtiger"])
    def test_open_system_round_trips_ops(self, name):
        env = make_env(n_cores=8)
        # open_system is strict: only pass workers where it is declared.
        opts = {"workers": 2} if "workers" in describe_options(name) else {}
        system = open_system(name, env, **opts)
        ctx = env.cpu.new_thread("u")

        def work():
            yield from system.execute(ctx, ("insert", b"k", b"v"))
            yield from system.execute(ctx, ("read", b"k", None))

        run_process(env, work())
        assert system.user_bytes_written() > 0
