"""Whole-program flow-analysis tests: call-graph construction, the three
interprocedural checkers (positive and negative fixtures each), determinism
of the output, the baseline machinery, and the unified check CLI."""

import json
import os
import textwrap

import pytest

from repro.analysis.callgraph import Project, load_project
from repro.analysis.flow import analyze_project, flow_rules
from repro.analysis.lint import ModuleUnderLint, lint_source
from repro.analysis.report import (
    apply_baseline,
    fingerprints,
    render_json,
    render_sarif,
    render_text,
)

SRC = os.path.join(os.path.dirname(__file__), "..", "src")

#: a stub of the sim lock API so fixtures type `self.x = Lock(...)` the
#: same way the real tree does.
SYNC_STUB = """
class Lock:
    def acquire(self, ctx, category=None):
        yield
    def release(self):
        pass

class Semaphore:
    def acquire(self, ctx, category=None):
        yield
    def release(self):
        pass
"""


def project_of(**modules):
    """Build a Project from ``module_name=source`` pairs (dots as __)."""
    mods = []
    for name, source in sorted(modules.items()):
        dotted = name.replace("__", ".")
        mods.append(
            ModuleUnderLint(
                textwrap.dedent(source), dotted, dotted.replace(".", "/") + ".py"
            )
        )
    return Project.from_modules(mods)


def flow(**modules):
    return analyze_project(project_of(**modules))


def rule_names(**modules):
    return [d.rule for d in flow(**modules)]


# ---------------------------------------------------------------------------
# call-graph construction
# ---------------------------------------------------------------------------


def test_callgraph_indexes_functions_and_classes():
    project = project_of(
        repro__engine__fix="""
        def helper():
            return 1

        class Engine:
            def put(self, key):
                return helper()
        """
    )
    assert "repro.engine.fix.helper" in project.functions
    assert "repro.engine.fix.Engine" in project.classes
    assert "repro.engine.fix.Engine.put" in project.functions
    callees = [s.callee for s in project.callees("repro.engine.fix.Engine.put")]
    assert callees == ["repro.engine.fix.helper"]


def test_callgraph_resolves_self_dispatch_through_bases():
    project = project_of(
        repro__engine__basefix="""
        class Base:
            def flush_impl(self):
                return 1

        class Child(Base):
            def run(self):
                return self.flush_impl()
        """
    )
    callees = [s.callee for s in project.callees("repro.engine.basefix.Child.run")]
    assert callees == ["repro.engine.basefix.Base.flush_impl"]


def test_callgraph_resolves_cross_module_imports_and_attr_types():
    project = project_of(
        repro__storage__devfix="""
        class Device:
            def write(self, n):
                yield
        """,
        repro__engine__userfix="""
        from repro.storage.devfix import Device

        class Engine:
            def __init__(self):
                self.device = Device()

            def flush(self):
                yield self.device.write(4096)
        """,
    )
    callees = [s.callee for s in project.callees("repro.engine.userfix.Engine.flush")]
    assert "repro.storage.devfix.Device.write" in callees


def test_callgraph_infers_factory_returns_and_param_types():
    # The WAL pattern: a factory returns a file object, a constructor takes
    # it as an untyped parameter — both hops must be inferred for the call
    # to resolve.  Two classes define flush() so the unique-name fallback
    # cannot mask a failure of the type inference.
    project = project_of(
        repro__storage__vfsfix="""
        class VFile:
            def flush(self):
                yield

        class Disk:
            def open_file(self, path):
                f = VFile()
                return f
        """,
        repro__storage__walfix="""
        class Writer:
            def __init__(self, vfile):
                self.vfile = vfile

            def flush(self):
                yield from self.vfile.flush()
        """,
        repro__engine__dbfix="""
        from repro.storage.vfsfix import Disk
        from repro.storage.walfix import Writer

        class Engine:
            def __init__(self):
                self.disk = Disk()
                self.writer = Writer(self.disk.open_file("wal"))

            def commit(self):
                yield from self.writer.flush()
        """,
    )
    assert (
        project.func_return_class["repro.storage.vfsfix.Disk.open_file"]
        == "repro.storage.vfsfix.VFile"
    )
    callees = [
        s.callee for s in project.callees("repro.storage.walfix.Writer.flush")
    ]
    assert callees == ["repro.storage.vfsfix.VFile.flush"]


def test_callgraph_stats_full_coverage_on_fixture():
    project = project_of(
        repro__engine__statfix="""
        def a():
            return b()

        def b():
            return 1
        """
    )
    stats = project.stats()
    assert stats["function_coverage"] == 1.0
    assert stats["resolved_call_sites"] == 1


# ---------------------------------------------------------------------------
# lock discipline
# ---------------------------------------------------------------------------


def lock_fixture(body):
    return {
        "repro__sim__sync": SYNC_STUB,
        "repro__engine__lockfix": (
            "from repro.sim.sync import Lock\n\n" + textwrap.dedent(body)
        ),
    }


def test_lock_blocking_while_locked_direct():
    diags = flow(
        **lock_fixture(
            """
        class Engine:
            def __init__(self):
                self.mu = Lock()

            def run(self, ctx):
                yield self.mu.acquire(ctx, "mu")
                yield self.cond.wait(ctx)
                self.mu.release()
        """
        )
    )
    assert [d.rule for d in diags] == ["blocking-while-locked"]
    assert "condvar" in diags[0].message


def test_lock_blocking_while_locked_through_call_chain():
    diags = flow(
        **lock_fixture(
            """
        class Engine:
            def __init__(self):
                self.mu = Lock()

            def _flush(self, ctx):
                yield self.disk.device.write(4096)

            def run(self, ctx):
                yield self.mu.acquire(ctx, "mu")
                yield from self._flush(ctx)
                self.mu.release()
        """
        )
    )
    assert [d.rule for d in diags] == ["blocking-while-locked"]
    assert "device-io" in diags[0].message
    assert "_flush" in diags[0].message  # the chain is reported


def test_lock_order_cycle_detected():
    diags = flow(
        **lock_fixture(
            """
        class Engine:
            def __init__(self):
                self.lock_a = Lock()
                self.lock_b = Lock()

            def forward(self, ctx):
                yield self.lock_a.acquire(ctx, "a")
                yield self.lock_b.acquire(ctx, "b")
                self.lock_b.release()
                self.lock_a.release()

            def backward(self, ctx):
                yield self.lock_b.acquire(ctx, "b")
                yield self.lock_a.acquire(ctx, "a")
                self.lock_a.release()
                self.lock_b.release()
        """
        )
    )
    assert [d.rule for d in diags] == ["lock-order-cycle"]
    assert "lock_a" in diags[0].message and "lock_b" in diags[0].message


def test_lock_negative_cost_charging_allowed_in_critical():
    assert (
        rule_names(
            **lock_fixture(
                """
        class Engine:
            def __init__(self):
                self.mu = Lock()

            def run(self, ctx, env):
                yield self.mu.acquire(ctx, "mu")
                yield env.cpu.exec(ctx, 1e-6, "work")
                yield env.sim.timeout(0.001)
                self.mu.release()
        """
            )
        )
        == []
    )


def test_lock_negative_spawned_work_does_not_block_caller():
    assert (
        rule_names(
            **lock_fixture(
                """
        class Engine:
            def __init__(self):
                self.mu = Lock()

            def run(self, ctx, env):
                yield self.mu.acquire(ctx, "mu")
                env.spawn(self.drain(ctx))
                self.mu.release()

            def drain(self, ctx):
                yield self.cond.wait(ctx)
        """
            )
        )
        == []
    )


def test_lock_negative_blocking_after_release():
    assert (
        rule_names(
            **lock_fixture(
                """
        class Engine:
            def __init__(self):
                self.mu = Lock()

            def run(self, ctx):
                yield self.mu.acquire(ctx, "mu")
                self.counter = self.counter + 1
                self.mu.release()
                yield self.cond.wait(ctx)
        """
            )
        )
        == []
    )


def test_lock_consistent_order_has_no_cycle():
    assert (
        rule_names(
            **lock_fixture(
                """
        class Engine:
            def __init__(self):
                self.lock_a = Lock()
                self.lock_b = Lock()

            def one(self, ctx):
                yield self.lock_a.acquire(ctx, "a")
                yield self.lock_b.acquire(ctx, "b")
                self.lock_b.release()
                self.lock_a.release()

            def two(self, ctx):
                yield self.lock_a.acquire(ctx, "a")
                yield self.lock_b.acquire(ctx, "b")
                self.lock_b.release()
                self.lock_a.release()
        """
            )
        )
        == []
    )


def test_lock_interprocedural_case_is_invisible_to_lint():
    """The acceptance differentiator: blocking reached through a call is
    beyond the per-module lint (which only sees same-function waits)."""
    body = """
    class Engine:
        def __init__(self):
            self.mu = Lock()

        def _flush(self, ctx):
            yield self.disk.device.write(4096)

        def run(self, ctx):
            yield self.mu.acquire(ctx, "mu")
            yield from self._flush(ctx)
            self.mu.release()
    """
    source = "from repro.sim.sync import Lock\n\n" + textwrap.dedent(body)
    lint_diags = lint_source(source, module="repro.engine.lockfix")
    assert "yield-in-critical" not in [d.rule for d in lint_diags]
    assert "blocking-while-locked" in rule_names(**lock_fixture(body))


# ---------------------------------------------------------------------------
# determinism taint
# ---------------------------------------------------------------------------


def test_taint_wall_clock_to_timeout_sink():
    diags = flow(
        repro__service__taintfix="""
        import time

        def pace(self, env, ctx):
            now = time.time()
            yield env.sim.timeout(now)
        """
    )
    assert [d.rule for d in diags] == ["determinism-taint"]
    assert "wall clock" in diags[0].message
    assert "sinks at" in diags[0].message


def test_taint_flows_through_helper_return_across_modules():
    diags = flow(
        repro__harness__helperfix="""
        import time

        def stamp():
            return time.time()
        """,
        repro__engine__taintfix="""
        from repro.harness.helperfix import stamp

        def schedule(self, env, ctx):
            cost = stamp()
            yield env.cpu.exec(ctx, cost, "work")
        """,
    )
    assert [d.rule for d in diags] == ["determinism-taint"]
    assert "returned by stamp()" in diags[0].message


def test_taint_set_iteration_reaches_heap_sink():
    diags = flow(
        repro__core__taintfix="""
        from heapq import heappush

        def enqueue(self, items):
            pending = set(items)
            for key in pending:
                heappush(self.heap, key)
        """
    )
    assert [d.rule for d in diags] == ["determinism-taint"]
    assert "unordered set" in diags[0].message


def test_taint_propagates_into_callee_params():
    diags = flow(
        repro__engine__paramfix="""
        import time

        def delay(env, amount):
            yield env.sim.timeout(amount)

        def run(self, env):
            skew = time.time()
            yield from delay(env, skew)
        """
    )
    assert "determinism-taint" in [d.rule for d in diags]
    joined = " ".join(d.message for d in diags)
    assert "passed to delay(amount)" in joined


def test_taint_negative_outside_sink_scopes():
    # Reporting tools may read wall clocks; only the simulation stack sinks.
    assert (
        rule_names(
            repro__toolsx__reportfix="""
        import time

        def pace(self, env, ctx):
            now = time.time()
            yield env.sim.timeout(now)
        """
        )
        == []
    )


def test_taint_negative_seeded_rng_and_sorted_iteration():
    assert (
        rule_names(
            repro__engine__cleanfix="""
        def pace(self, env, ctx, items):
            jitter = self.rng.random()
            yield env.sim.timeout(jitter)
            for key in sorted(set(items)):
                yield env.cpu.exec(ctx, 1e-7, "scan")
        """
        )
        == []
    )


def test_lint_and_taint_both_catch_wall_clock_in_service():
    """The wall-clock lint covers all of src/ (repro.perf is the one exempt
    package); the flow checker additionally proves the value *reaches a
    scheduling sink* — same defect, two complementary reports."""
    code = """
    import time

    def pace(self, env, ctx):
        now = time.time()
        yield env.sim.timeout(now)
    """
    lint_diags = lint_source(textwrap.dedent(code), module="repro.service.taintfix")
    assert [d.rule for d in lint_diags] == ["wall-clock"]
    assert rule_names(repro__service__taintfix=code) == ["determinism-taint"]


# ---------------------------------------------------------------------------
# status contract
# ---------------------------------------------------------------------------


def test_status_discarded_hit():
    diags = flow(
        repro__engine__statusfix="""
        class Engine:
            def get_status(self, ctx, key):
                return KVStatus.ok(b"v")

            def warm(self, ctx):
                self.get_status(ctx, b"k")
        """
    )
    assert [d.rule for d in diags] == ["status-discarded"]
    assert "get_status" in diags[0].message


def test_status_discarded_through_yield_from():
    diags = flow(
        repro__engine__statusfix="""
        class Engine:
            def get_status(self, ctx, key):
                status = KVStatus.not_found(key)
                return status

            def warm(self, ctx):
                yield from self.get_status(ctx, b"k")
        """
    )
    assert [d.rule for d in diags] == ["status-discarded"]


def test_status_negative_when_consumed_or_returned():
    assert (
        rule_names(
            repro__engine__statusfix="""
        class Engine:
            def get_status(self, ctx, key):
                return KVStatus.ok(b"v")

            def warm(self, ctx):
                status = self.get_status(ctx, b"k")
                if not status.is_ok():
                    raise RuntimeError(status)

            def passthrough(self, ctx):
                return self.get_status(ctx, b"k")
        """
        )
        == []
    )


def test_crash_swallowed_hit_and_reraise_negative():
    bad = """
    def drain(self):
        try:
            self.step()
        except Exception:
            self.log("oops")
    """
    good = """
    from repro.faults.plane import CrashTriggered

    def drain(self):
        try:
            self.step()
        except CrashTriggered:
            self.note()
            raise
        except Exception:
            self.log("oops")
            raise
    """
    assert rule_names(repro__service__crashfix=bad) == ["crash-swallowed"]
    assert rule_names(repro__service__crashfix=good) == []


def test_crash_swallowed_bare_except_hit():
    assert rule_names(
        repro__engine__crashfix="""
        def drain(self):
            try:
                self.step()
            except:
                pass
        """
    ) == ["crash-swallowed"]


def test_crash_swallowed_is_invisible_to_lint_outside_core():
    """lint's bare-except rule watches worker loops; an `except Exception:
    pass` in the service plane only the flow contract checker sees."""
    code = """
    def drain(self):
        try:
            self.step()
        except Exception:
            self.log("oops")
    """
    lint_diags = lint_source(textwrap.dedent(code), module="repro.service.crashfix")
    assert lint_diags == []
    assert rule_names(repro__service__crashfix=code) == ["crash-swallowed"]


def test_unbounded_retry_no_bound_hit():
    diags = flow(
        repro__core__retryfix="""
        from repro.errors import KVError

        def submit(self, env, ctx):
            while True:
                try:
                    yield from self.io(ctx)
                    return
                except KVError:
                    yield env.sim.timeout(0.001)
        """
    )
    assert [d.rule for d in diags] == ["unbounded-retry"]
    assert "never gives up" in diags[0].message


def test_unbounded_retry_no_backoff_hit():
    diags = flow(
        repro__core__retryfix="""
        from repro.errors import KVError

        def submit(self, ctx):
            attempts = 0
            while True:
                try:
                    self.io(ctx)
                    return
                except KVError:
                    attempts = attempts + 1
                    if attempts >= 3:
                        raise
        """
    )
    assert [d.rule for d in diags] == ["unbounded-retry"]
    assert "no backoff" in diags[0].message


def test_retry_negative_bounded_with_backoff():
    assert (
        rule_names(
            repro__core__retryfix="""
        from repro.errors import KVError

        def submit(self, env, ctx):
            attempts = 0
            while True:
                try:
                    yield from self.io(ctx)
                    return
                except KVError:
                    attempts = attempts + 1
                    if attempts >= 3:
                        raise
                    yield env.sim.timeout(0.001 * attempts)
        """
        )
        == []
    )


def test_retry_negative_service_loop_exempt():
    # A dispatcher that dequeues fresh work each iteration is not a retry
    # loop, even though it catches retryable errors forever.
    assert (
        rule_names(
            repro__service__loopfix="""
        from repro.errors import KVError

        def dispatcher(self, ctx):
            while True:
                item = yield self.queue.get(ctx)
                try:
                    yield from self.handle(item)
                except KVError:
                    self.counters.add("retries")
        """
        )
        == []
    )


def test_retry_negative_shutdown_flag_is_a_bound():
    assert (
        rule_names(
            repro__engine__loopfix="""
        from repro.errors import KVError

        def flush_loop(self, env, ctx):
            while not self.closing:
                try:
                    yield from self.flush_once(ctx)
                except KVError:
                    yield env.sim.timeout(0.01)
        """
        )
        == []
    )


# ---------------------------------------------------------------------------
# suppression, determinism, report formats
# ---------------------------------------------------------------------------


def test_flow_diagnostics_honor_line_suppressions():
    assert (
        rule_names(
            repro__engine__suppfix="""
        class Engine:
            def get_status(self, ctx, key):
                return KVStatus.ok(b"v")

            def warm(self, ctx):
                self.get_status(ctx, b"k")  # lint: disable=status-discarded  (warm-up: outcome is irrelevant)
        """
        )
        == []
    )


def _dirty_tree_sources():
    return dict(
        repro__sim__sync=SYNC_STUB,
        repro__engine__many="""
        from repro.sim.sync import Lock
        import time

        class Engine:
            def __init__(self):
                self.mu = Lock()

            def get_status(self, ctx, key):
                return KVStatus.ok(b"v")

            def run(self, env, ctx):
                self.get_status(ctx, b"k")
                now = time.time()
                yield env.sim.timeout(now)
                yield self.mu.acquire(ctx, "mu")
                yield self.cond.wait(ctx)
                self.mu.release()
        """,
    )


def test_output_is_byte_identical_across_fresh_runs():
    runs = []
    for _ in range(2):
        diags = flow(**_dirty_tree_sources())
        runs.append(
            (render_text(diags), render_json(diags), fingerprints(diags))
        )
    assert runs[0] == runs[1]
    assert len(runs[0][2]) == 3  # three distinct findings, all fingerprinted


def test_fingerprints_tolerate_line_drift():
    from repro.analysis.lint import Diagnostic

    a = Diagnostic("p.py", 10, 4, "r", "lock acquired line 10 in 'f'")
    b = Diagnostic("p.py", 99, 0, "r", "lock acquired line 99 in 'f'")
    assert fingerprints([a]) == fingerprints([b])


def test_apply_baseline_matches_and_reports_stale():
    diags = flow(**_dirty_tree_sources())
    entries = [
        {"fingerprint": fp, "rule": d.rule}
        for d, fp in zip(diags, fingerprints(diags))
    ]
    new, matched, stale = apply_baseline(diags, entries)
    assert (new, matched, stale) == ([], len(diags), [])
    # Fix one finding: its entry goes stale, nothing is "new".
    new, matched, stale = apply_baseline(diags[1:], entries)
    assert new == [] and matched == len(diags) - 1 and len(stale) == 1


def test_sarif_render_shape():
    diags = flow(**_dirty_tree_sources())
    payload = json.loads(render_sarif(diags, flow_rules()))
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-check"
    assert len(run["results"]) == len(diags)
    assert all("partialFingerprints" in r for r in run["results"])


# ---------------------------------------------------------------------------
# the real tree
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def src_project():
    return load_project([SRC])


def test_real_tree_call_graph_coverage(src_project):
    stats = src_project.stats()
    assert stats["function_coverage"] >= 0.95  # acceptance criterion
    assert stats["functions"] > 500
    assert stats["resolution_rate"] > 0.3


def test_real_tree_is_flow_clean(src_project):
    assert analyze_project(src_project) == []


def test_real_tree_analysis_is_deterministic(src_project):
    one = render_json(analyze_project(src_project))
    two = render_json(analyze_project(src_project))
    assert one == two


def test_no_stale_baseline_entries(src_project):
    """Every committed baseline entry must match a current finding."""
    root = os.path.join(os.path.dirname(__file__), "..")
    path = os.path.join(root, "analysis-baseline.json")
    if not os.path.exists(path):
        pytest.skip("no committed baseline")
    with open(path) as f:
        entries = json.load(f)["entries"]
    from repro.analysis.lint import lint_paths

    diags = lint_paths([SRC]) + analyze_project(src_project)
    _new, _matched, stale = apply_baseline(diags, entries)
    assert stale == []


# ---------------------------------------------------------------------------
# the unified CLI
# ---------------------------------------------------------------------------


BAD_TREE = """
class Engine:
    def get_status(self, ctx, key):
        return KVStatus.ok(b"v")

    def warm(self, ctx):
        self.get_status(ctx, b"k")
"""


def _write_tree(tmp_path):
    pkg = tmp_path / "repro" / "engine"
    pkg.mkdir(parents=True)
    (pkg / "clifix.py").write_text(textwrap.dedent(BAD_TREE))
    return str(tmp_path)


def test_cli_exclusive_flags_usage_error(capsys):
    from repro.tools.check import main

    assert main(["--lint-only", "--flow-only"]) == 2


def test_cli_list_rules_covers_both_pipelines(capsys):
    from repro.tools.check import main

    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("wall-clock", "lock-order-cycle", "determinism-taint",
                 "status-discarded", "unbounded-retry", "blocking-while-locked",
                 "crash-swallowed"):
        assert rule in out


def test_cli_reports_flow_findings(tmp_path, capsys):
    from repro.tools.check import main

    tree = _write_tree(tmp_path)
    assert main([tree]) == 1
    out = capsys.readouterr().out
    assert "status-discarded" in out


def test_cli_lint_only_skips_flow(tmp_path, capsys):
    from repro.tools.check import main

    tree = _write_tree(tmp_path)
    assert main(["--lint-only", tree]) == 0


def test_cli_json_and_sarif_outputs(tmp_path, capsys):
    from repro.tools.check import main

    tree = _write_tree(tmp_path)
    sarif = tmp_path / "out" / "report.sarif"
    assert main([tree, "--json", "-", "--sarif", str(sarif)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["total"] == 1
    assert payload["diagnostics"][0]["rule"] == "status-discarded"
    assert payload["diagnostics"][0]["fingerprint"]
    sarif_payload = json.loads(sarif.read_text())
    assert sarif_payload["runs"][0]["results"][0]["ruleId"] == "status-discarded"


def test_cli_baseline_roundtrip_and_stale_failure(tmp_path, capsys, monkeypatch):
    from repro.tools.check import main

    tree = _write_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert main([tree]) == 1
    assert main([tree, "--update-baseline"]) == 0
    assert os.path.exists(tmp_path / "analysis-baseline.json")
    capsys.readouterr()
    # Baselined: same findings now pass, and say so.
    assert main([tree]) == 0
    assert "baselined" in capsys.readouterr().out
    # Fix the defect: the baseline entry is stale, which must fail the run.
    fixed = BAD_TREE.replace(
        "self.get_status(ctx, b\"k\")", "return self.get_status(ctx, b\"k\")"
    )
    (tmp_path / "repro" / "engine" / "clifix.py").write_text(
        textwrap.dedent(fixed)
    )
    assert main([tree]) == 1
    assert "stale" in capsys.readouterr().err
    # --update-baseline prunes it; runs are clean again.
    assert main([tree, "--update-baseline"]) == 0
    assert main([tree]) == 0


def test_cli_rule_filter(tmp_path, capsys):
    from repro.tools.check import main

    tree = _write_tree(tmp_path)
    assert main([tree, "--rule", "determinism-taint"]) == 0
    assert main([tree, "--rule", "status-discarded"]) == 1


def test_flow_rule_catalogue():
    names = {name for name, _desc in flow_rules()}
    assert names == {
        "lock-order-cycle",
        "blocking-while-locked",
        "determinism-taint",
        "host-time-leak",
        "status-discarded",
        "crash-swallowed",
        "unbounded-retry",
    }
