"""Golden-fingerprint byte-identity suite for the simulator fast path.

The kernel/engine/storage fast-path work (ROADMAP item 4) is only shippable
because every sim-side output byte is pinned: these tests hash dbbench
results, serve SLO reports and critical-path blame across all seven systems
against fingerprints committed *before* the fast path landed
(``tests/golden/fingerprints.json``).  Any optimization that changes event
ordering, cost arithmetic or record encoding fails here first.

Each pinned configuration is also re-run under ``--schedule-seed`` and with
the observability hooks attached (sanitizer, zone profiler, critpath
edgelog), asserting the *same* fingerprint: the one-branch-off hook
contract means none of them may perturb simulated results.

Refresh (only when a sim-side change is intentional)::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/test_golden.py -q
"""

import hashlib
import json
import os

import pytest

from repro.perf import zones as _perf_zones
from repro.systems import system_names
from repro.tools import dbbench, serve

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "fingerprints.json")
UPDATE = os.environ.get("REPRO_UPDATE_GOLDENS") == "1"

#: volatile keys stripped before hashing: host file paths and artifact
#: locations vary per run; everything else in a report is sim-side.
_VOLATILE = ("_file", "_files", "trace_file", "stats_files")


def _strip(obj):
    if isinstance(obj, dict):
        return {
            k: _strip(v)
            for k, v in obj.items()
            if not any(k.endswith(s) or k == s for s in _VOLATILE)
        }
    if isinstance(obj, list):
        return [_strip(v) for v in obj]
    if isinstance(obj, float):
        # 10 significant digits: float *summation order* may legally differ
        # under --schedule-seed (same-time shuffles reassociate latency
        # sums), moving the last ulp; any genuine model change moves far
        # more than the 11th digit.
        return float("%.10g" % obj)
    return obj


def fingerprint(obj) -> str:
    blob = json.dumps(_strip(obj), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _load_goldens() -> dict:
    if not os.path.exists(GOLDEN_PATH):
        return {}
    with open(GOLDEN_PATH) as f:
        return json.load(f)


_RECORDED = {}


def check(name: str, fp: str) -> None:
    if UPDATE:
        _RECORDED[name] = fp
        return
    goldens = _load_goldens()
    assert name in goldens, (
        "no golden for %r: run REPRO_UPDATE_GOLDENS=1 pytest %s" % (name, __file__)
    )
    assert fp == goldens[name], (
        "%s: fingerprint %s != golden %s — sim-side output changed; the fast "
        "path must be byte-identical (or refresh goldens for an intentional "
        "model change)" % (name, fp, goldens[name])
    )


@pytest.fixture(scope="module", autouse=True)
def _write_goldens_on_update():
    yield
    if UPDATE and _RECORDED:
        goldens = _load_goldens()
        goldens.update(_RECORDED)
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as f:
            json.dump(goldens, f, indent=2, sort_keys=True)
            f.write("\n")


# -- dbbench ----------------------------------------------------------------

_DBBENCH_COMMON = ["--threads", "4", "--workers", "2", "--device", "nvme",
                   "--seed", "0", "--num", "500"]


def _dbbench_result(bench: str, extra=(), **run_kwargs) -> dict:
    argv = ["--benchmarks", bench] + _DBBENCH_COMMON + list(extra)
    args = dbbench.build_parser().parse_args(argv)
    return dbbench.run_benchmark(bench, args, **run_kwargs)


@pytest.mark.parametrize("system", system_names())
def test_dbbench_fillrandom_golden(system):
    result = _dbbench_result("fillrandom", ["--system", system])
    check("dbbench:fillrandom:%s" % system, fingerprint(result))


@pytest.mark.parametrize("system", ("p2kvs", "rocksdb"))
def test_dbbench_readrandom_golden(system):
    result = _dbbench_result("readrandom", ["--system", system])
    check("dbbench:readrandom:%s" % system, fingerprint(result))


@pytest.mark.parametrize("seed", (3, 11))
def test_dbbench_schedule_seed_invariant(seed):
    """--schedule-seed shuffles same-time delivery; results must not move."""
    result = _dbbench_result(
        "fillrandom", ["--system", "p2kvs", "--schedule-seed", str(seed)]
    )
    check("dbbench:fillrandom:p2kvs", fingerprint(result))


def test_dbbench_sanitizer_off_path():
    """The sanitizer hooks (monitor) must not change simulated results."""
    result = _dbbench_result("fillrandom", ["--system", "p2kvs", "--sanitize"])
    check("dbbench:fillrandom:p2kvs", fingerprint(result))


@pytest.mark.no_sanitize
def test_dbbench_profiler_off_path():
    """The wall-clock zone profiler must not change simulated results."""
    with _perf_zones.attach():
        result = _dbbench_result("fillrandom", ["--system", "p2kvs"])
    check("dbbench:fillrandom:p2kvs", fingerprint(result))


# -- critical-path blame ----------------------------------------------------


def _critpath_blame(extra=(), tmp_base="golden-critpath"):
    result = _dbbench_result(
        "fillrandom",
        ["--system", "p2kvs"] + list(extra),
        critpath_base=tmp_base,
    )
    return result["critpath"]


def test_critpath_blame_golden(tmp_path):
    blame = _critpath_blame(tmp_base=str(tmp_path / "cp"))
    check("critpath:fillrandom:p2kvs", fingerprint(blame))


def test_critpath_blame_schedule_seed_invariant(tmp_path):
    blame = _critpath_blame(["--schedule-seed", "5"], str(tmp_path / "cp"))
    check("critpath:fillrandom:p2kvs", fingerprint(blame))


# -- serve (sharded service plane) ------------------------------------------

_SERVE_ARGV = ["--scenario", "uniform", "--shards", "2", "--ops", "300",
               "--key-space", "200", "--seed", "42"]


def _serve_report(extra=()) -> dict:
    args = serve.build_parser().parse_args(_SERVE_ARGV + list(extra))
    return serve.run_scenario(args)


def test_serve_report_golden():
    check("serve:uniform:2shard", fingerprint(_serve_report()))


def test_serve_report_schedule_seed_invariant():
    report = _serve_report(["--schedule-seed", "9"])
    check("serve:uniform:2shard", fingerprint(report))
