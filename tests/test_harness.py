"""Tests for the experiment harness: systems, runners, metrics windows."""

import pytest

from repro.engine import make_env, rocksdb_options
from repro.harness import (
    KVellSystem,
    Metrics,
    MetricsCollector,
    MultiInstanceSystem,
    P2KVSSystem,
    SingleInstanceSystem,
    WiredTigerSystem,
    open_system,
    preload,
    run_closed_loop,
    run_open_loop,
    scaled_options,
)
from repro.workloads import fillrandom, make_key, readrandom, split_stream


def small_opts():
    return scaled_options(write_buffer_size=16 * 1024)


class TestSystems:
    def test_single_instance_executes_all_verbs(self, env):
        system = open_system(env, SingleInstanceSystem.open(env, small_opts()))
        ops = [
            ("insert", make_key(1), b"v1"),
            ("update", make_key(1), b"v2"),
            ("read", make_key(1), None),
            ("rmw", make_key(1), b"v3"),
            ("scan", make_key(0), 5),
            ("range", make_key(0), make_key(9)),
        ]
        metrics = run_closed_loop(env, system, [ops])
        assert metrics.n_ops == len(ops)
        assert metrics.qps > 0

    def test_unknown_verb_raises(self, env):
        system = open_system(env, SingleInstanceSystem.open(env, small_opts()))
        with pytest.raises(ValueError):
            run_closed_loop(env, system, [[("explode", b"k", None)]])

    def test_multi_instance_routes_by_thread(self, env):
        system = open_system(env, MultiInstanceSystem.open(env, 2, small_opts))
        streams = split_stream(fillrandom(100), 2)
        run_closed_loop(env, system, streams)
        assert all(
            e.counters.get("write_requests") > 0 for e in system.engines
        )

    def test_p2kvs_system_sync_and_async(self, env):
        sync = open_system(env, P2KVSSystem.open(env, n_workers=2))
        m1 = run_closed_loop(env, sync, split_stream(fillrandom(200), 4))
        assert m1.n_ops == 200

        env2 = make_env(n_cores=8)
        async_sys = open_system(
            env2, P2KVSSystem.open(env2, n_workers=2, async_window=16)
        )
        m2 = run_closed_loop(env2, async_sys, split_stream(fillrandom(200), 4))
        assert m2.n_ops == 200
        # Async latencies recorded via the completion callbacks.
        assert m2.latency_of("write").count == 200

    def test_kvell_system(self, env):
        system = open_system(env, KVellSystem.open(env, n_workers=2))
        metrics = run_closed_loop(env, system, split_stream(fillrandom(150), 4))
        assert metrics.n_ops == 150
        assert system.memory_bytes() > 0

    def test_wiredtiger_system(self, env):
        system = open_system(env, WiredTigerSystem.open(env))
        metrics = run_closed_loop(env, system, split_stream(fillrandom(100), 2))
        assert metrics.n_ops == 100


class TestRunners:
    def test_preload_not_measured(self, env):
        system = open_system(env, SingleInstanceSystem.open(env, small_opts()))
        preload(env, system, fillrandom(300), n_threads=4)
        metrics = run_closed_loop(
            env, system, split_stream(readrandom(100, 300), 2)
        )
        # The measured window contains only the reads.
        assert metrics.n_ops == 100
        assert metrics.user_bytes_written == 0

    def test_latency_recorded_per_class(self, env):
        system = open_system(env, SingleInstanceSystem.open(env, small_opts()))
        preload(env, system, fillrandom(100), n_threads=2)
        ops = [("read", make_key(1), None), ("insert", make_key(999), b"v")]
        metrics = run_closed_loop(env, system, [ops])
        assert metrics.latency_of("read").count == 1
        assert metrics.latency_of("write").count == 1
        assert metrics.avg_latency > 0
        assert metrics.p99_latency >= metrics.avg_latency * 0.5

    def test_open_loop_offered_rate_controls_duration(self, env):
        system = open_system(env, SingleInstanceSystem.open(env, small_opts()))
        ops = list(fillrandom(200))
        metrics = run_open_loop(env, system, ops, rate=100_000)
        # 200 ops at 100 KQPS: the run spans ~2 ms of simulated time.
        assert 0.5e-3 < metrics.elapsed < 20e-3
        assert metrics.latency_of("write").count == 200

    def test_write_amplification_positive_under_writes(self, env):
        system = open_system(env, SingleInstanceSystem.open(env, small_opts()))
        metrics = run_closed_loop(env, system, split_stream(fillrandom(2000), 4))
        assert metrics.write_amplification > 1.0
        assert metrics.io_amplification >= metrics.write_amplification
        assert 0 < metrics.bandwidth_utilization < 1.5
        assert metrics.cpu_utilization > 0


class TestMetricsCollector:
    def test_window_deltas_only(self, env):
        collector = MetricsCollector(env, "x")

        def burn():
            ctx = env.cpu.new_thread("t")
            yield env.device.write(1000, category="wal")
            yield env.cpu.exec(ctx, 1e-3)

        env.sim.spawn(burn())
        env.sim.run()
        collector.start()  # everything above is outside the window

        def more():
            yield env.device.write(500, category="flush")

        env.sim.spawn(more())
        env.sim.run()
        metrics = collector.finish(n_ops=1, user_bytes_written=100, memory_bytes=0)
        assert metrics.device_write_bytes == 500
        assert metrics.device_bytes.get("flush") == 500
        assert metrics.device_bytes.get("wal", 0) == 0

    def test_memory_peak_tracked(self, env):
        collector = MetricsCollector(env, "x")
        collector.start()
        collector.note_memory(100)
        collector.note_memory(5000)
        collector.note_memory(200)
        metrics = collector.finish(1, 0, memory_bytes=50)
        assert metrics.memory_bytes == 5000

    def test_zero_elapsed_guards(self, env):
        collector = MetricsCollector(env, "x")
        collector.start()
        metrics = collector.finish(0, 0, 0)
        assert metrics.qps == 0
        assert metrics.cpu_utilization == 0
        assert metrics.bandwidth_utilization == 0
        assert metrics.write_amplification == 0
