"""Determinism-lint unit tests: one hit and one miss per rule, plus
suppression, scoping and the CLI."""

import textwrap

import pytest

from repro.analysis.lint import RULES, lint_paths, lint_source


def _diags(code, module="repro.sim.testmodule"):
    return lint_source(textwrap.dedent(code), module=module)


def _rules(code, module="repro.sim.testmodule"):
    return [d.rule for d in _diags(code, module=module)]


def test_registry_has_required_rules():
    names = {rule.name for rule in RULES}
    assert {
        "wall-clock",
        "global-random",
        "unordered-iter",
        "lock-pairing",
        "condvar-wait-loop",
        "yield-in-critical",
        "adhoc-metrics",
        "unlabeled-wakeup",
    } <= names
    assert len(names) >= 5


# ---------------------------------------------------------------------------
# wall-clock
# ---------------------------------------------------------------------------


def test_wall_clock_hit():
    diags = lint_source("import time\nstart = time.time()\n")
    assert [d.rule for d in diags] == ["wall-clock"]
    assert diags[0].line == 2
    assert "sim.now" in diags[0].message


def test_wall_clock_miss_on_sim_time():
    assert _rules(
        """
        def proc(sim):
            start = sim.now
            yield sim.timeout(1.0)
        """
    ) == []


def test_wall_clock_variants():
    assert _rules("import time\ntime.sleep(1)\n") == ["wall-clock"]
    assert _rules("import datetime\nd = datetime.datetime.now()\n") == ["wall-clock"]


# ---------------------------------------------------------------------------
# global-random
# ---------------------------------------------------------------------------


def test_global_random_hit():
    diags = lint_source("import random\nx = random.random()\n")
    assert [d.rule for d in diags] == ["global-random"]
    assert "seeded" in diags[0].message


def test_global_random_miss_on_seeded_instance():
    assert _rules(
        """
        import random
        rng = random.Random(42)
        x = rng.random()
        y = rng.randint(0, 10)
        """
    ) == []


def test_global_random_urandom_hit():
    assert _rules("import os\nx = os.urandom(8)\n") == ["global-random"]


# ---------------------------------------------------------------------------
# unordered-iter
# ---------------------------------------------------------------------------


def test_unordered_iter_hit_on_set_name():
    diags = _diags(
        """
        def f(items):
            pending = set(items)
            for x in pending:
                schedule(x)
        """
    )
    assert [d.rule for d in diags] == ["unordered-iter"]


def test_unordered_iter_hit_on_literal_and_comprehension():
    assert _rules("for x in {1, 2, 3}:\n    pass\n") == ["unordered-iter"]
    assert _rules("out = [x for x in {1, 2}]\n") == ["unordered-iter"]


def test_unordered_iter_miss_when_sorted():
    assert _rules(
        """
        def f(items):
            pending = set(items)
            for x in sorted(pending):
                schedule(x)
        """
    ) == []


def test_unordered_iter_miss_on_list():
    assert _rules("for x in [1, 2, 3]:\n    pass\n") == []


# ---------------------------------------------------------------------------
# lock-pairing
# ---------------------------------------------------------------------------


def test_lock_pairing_hit():
    diags = _diags(
        """
        def f(self, ctx):
            yield self.lock.acquire(ctx)
            do_work()
        """
    )
    assert [d.rule for d in diags] == ["lock-pairing"]
    assert "1 time(s)" in diags[0].message


def test_lock_pairing_miss_when_balanced():
    assert _rules(
        """
        def f(self, ctx):
            yield self.lock.acquire(ctx)
            do_work()
            self.lock.release()
        """
    ) == []


def test_lock_pairing_counts_multiple():
    assert _rules(
        """
        def f(self, ctx):
            yield self.lock.acquire(ctx)
            self.lock.release()
            yield self.lock.acquire(ctx)
        """
    ) == ["lock-pairing"]


def test_lock_pairing_ignores_nested_function_release():
    # The async-put pattern: release inside a callback is a different
    # function scope, so the outer acquire is flagged (suppressible).
    code = """
    def f(self, ctx):
        yield self.window.acquire(ctx)
        def on_done(_r):
            self.window.release()
        submit(on_done)
    """
    assert _rules(code) == ["lock-pairing"]


# ---------------------------------------------------------------------------
# condvar-wait-loop
# ---------------------------------------------------------------------------


def test_condvar_wait_loop_hit():
    diags = _diags(
        """
        def f(self, ctx):
            yield self.cond.wait(ctx)
            consume()
        """
    )
    assert [d.rule for d in diags] == ["condvar-wait-loop"]


def test_condvar_wait_loop_miss_inside_while():
    assert _rules(
        """
        def f(self, ctx):
            while not self.ready:
                yield self.cond.wait(ctx)
            consume()
        """
    ) == []


# ---------------------------------------------------------------------------
# yield-in-critical
# ---------------------------------------------------------------------------


def test_yield_in_critical_hit():
    diags = _diags(
        """
        def f(self, ctx):
            yield self.lock.acquire(ctx)
            while not self.ready:
                yield self.cond.wait(ctx)
            self.lock.release()
        """
    )
    assert "yield-in-critical" in [d.rule for d in diags]


def test_yield_in_critical_miss_when_released_first():
    assert _rules(
        """
        def f(self, ctx):
            yield self.lock.acquire(ctx)
            self.lock.release()
            while not self.ready:
                yield self.cond.wait(ctx)
        """
    ) == []


# ---------------------------------------------------------------------------
# adhoc-metrics
# ---------------------------------------------------------------------------


def test_adhoc_metrics_hit_on_bare_counter_construction():
    diags = _diags(
        """
        class Engine:
            def __init__(self, env):
                self.counters = Counter()
                self.latency = Histogram()
        """,
        module="repro.engine.db",
    )
    assert [d.rule for d in diags] == ["adhoc-metrics", "adhoc-metrics"]
    assert "env.metrics" in diags[0].message


def test_adhoc_metrics_hit_on_collector_call():
    diags = _diags(
        """
        def flush(self):
            self.collector.record_latency("flush", 0.001)
        """,
        module="repro.storage.sstable",
    )
    assert [d.rule for d in diags] == ["adhoc-metrics"]


def test_adhoc_metrics_miss_on_registry_usage():
    assert _rules(
        """
        class Engine:
            def __init__(self, env):
                self.counters = env.metrics.group("engine.db", fresh=True)
                self.latency = env.metrics.histogram("engine.db.flush")
                env.metrics.gauge("engine.db.l0", lambda: 0)
        """,
        module="repro.engine.db",
    ) == []


def test_adhoc_metrics_miss_outside_scoped_packages():
    # The harness and benchmarks legitimately construct collectors and
    # histograms; only engine/core/storage are in scope.
    code = """
    def run(env):
        h = Histogram()
        collector.record_latency("write", 1e-5)
    """
    assert _rules(code, module="repro.harness.metrics") == []
    assert _rules(code, module="repro.baselines.kvell") == []
    assert _rules(code, module="repro.engine.db") == [
        "adhoc-metrics",
        "adhoc-metrics",
    ]


def test_adhoc_metrics_line_suppression():
    code = (
        "h = Histogram()  # lint: disable=adhoc-metrics  (local scratch)\n"
    )
    assert _rules(code, module="repro.core.worker") == []


# ---------------------------------------------------------------------------
# unlabeled-wakeup
# ---------------------------------------------------------------------------


def test_unlabeled_wakeup_hit_on_direct_succeed():
    diags = _diags(
        """
        def release(self):
            ev = self._waiters.popleft()
            ev.succeed()
        """,
        module="repro.sim.mylock",
    )
    assert [d.rule for d in diags] == ["unlabeled-wakeup"]
    assert "wake(" in diags[0].message


def test_unlabeled_wakeup_miss_on_wake_helper():
    assert _rules(
        """
        from repro.sim.wakeup import wake

        def release(self):
            ev, since = self._waiters.popleft()
            wake(ev, resource="lock:wal", queued_at=since)
        """,
        module="repro.sim.mylock",
    ) == []


def test_unlabeled_wakeup_scoped_to_sim_package():
    # Engine/harness code completes futures directly; only the kernel's
    # waiter releases must be edge-labeled.
    code = "def done(self):\n    self.future.succeed(42)\n"
    assert _rules(code, module="repro.engine.db") == []
    assert _rules(code, module="repro.sim.queues2") == ["unlabeled-wakeup"]


def test_unlabeled_wakeup_line_suppression():
    code = (
        "def fire(ev):\n"
        "    ev.succeed()  # lint: disable=unlabeled-wakeup  (edge pre-annotated)\n"
    )
    assert _rules(code, module="repro.sim.wakeup2") == []


# ---------------------------------------------------------------------------
# suppressions, scoping, runner
# ---------------------------------------------------------------------------


def test_line_suppression():
    code = "import time\nt = time.time()  # lint: disable=wall-clock  (test)\n"
    assert lint_source(code) == []


def test_line_suppression_only_covers_named_rule():
    code = "import time\nt = time.time()  # lint: disable=global-random\n"
    assert [d.rule for d in lint_source(code)] == ["wall-clock"]


def test_file_suppression():
    code = "# lint: disable-file=wall-clock\nimport time\na = time.time()\nb = time.time()\n"
    assert lint_source(code) == []


def test_wall_clock_covers_all_of_src_except_repro_perf():
    # wall-clock applies everywhere; repro.perf is the one exempt package
    # (the module allowlist, preferred over per-line disables).
    code = "import time\nt = time.time()\n"
    assert [d.rule for d in lint_source(code, module="repro.tools.dbbench")] == ["wall-clock"]
    assert [d.rule for d in lint_source(code, module="repro.engine.db")] == ["wall-clock"]
    assert lint_source(code, module="repro.perf.zones") == []
    assert lint_source(code, module="repro.perf.tax") == []


def test_lint_paths_on_tree(tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import time\nt = time.time()\n")
    (pkg / "good.py").write_text("x = 1\n")
    diags = lint_paths([str(tmp_path)])
    assert len(diags) == 1
    assert diags[0].rule == "wall-clock"
    assert diags[0].path.endswith("bad.py")
    assert diags[0].line == 2


def test_cli_reports_and_exits_nonzero(tmp_path, capsys):
    from repro.tools.lint import main

    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("import random\nx = random.random()\n")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "global-random" in out

    (pkg / "bad.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0


def test_cli_list_rules(capsys):
    from repro.tools.lint import main

    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "wall-clock" in out and "lock-pairing" in out


def test_repo_source_tree_is_clean():
    """The shipped src/ tree must stay lint-clean (acceptance criterion)."""
    import os

    src = os.path.join(os.path.dirname(__file__), "..", "src")
    assert lint_paths([src]) == []
