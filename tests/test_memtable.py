"""Tests (incl. property-based) for the skiplist and MemTable."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.memtable import (
    DELETED,
    FOUND,
    NOT_FOUND,
    MemTable,
    SkipList,
    VTYPE_DELETE,
    VTYPE_VALUE,
)


class TestSkipList:
    def test_insert_and_get(self):
        sl = SkipList()
        sl.insert(5, "five")
        sl.insert(1, "one")
        sl.insert(3, "three")
        assert sl.get(3) == "three"
        assert sl.get(2) is None
        assert len(sl) == 3

    def test_iteration_is_sorted(self):
        sl = SkipList()
        for k in [9, 2, 7, 4, 1, 8]:
            sl.insert(k, str(k))
        assert [k for k, _ in sl] == [1, 2, 4, 7, 8, 9]

    def test_iter_from_midpoint(self):
        sl = SkipList()
        for k in range(0, 20, 2):
            sl.insert(k, k)
        assert [k for k, _ in sl.iter_from(7)] == [8, 10, 12, 14, 16, 18]

    def test_deterministic_given_seed(self):
        a, b = SkipList(seed=7), SkipList(seed=7)
        for k in range(100):
            a.insert(k, k)
            b.insert(k, k)
        assert list(a) == list(b)

    @given(st.lists(st.integers(0, 10000), unique=True))
    @settings(max_examples=50)
    def test_matches_sorted_dict_model(self, keys):
        sl = SkipList(seed=1)
        model = {}
        for k in keys:
            sl.insert(k, k * 2)
            model[k] = k * 2
        assert list(sl) == sorted(model.items())
        for k in keys[:20]:
            assert sl.get(k) == model[k]


class TestMemTable:
    def test_put_get(self):
        mt = MemTable()
        mt.add(1, VTYPE_VALUE, b"k1", b"v1")
        state, value = mt.get(b"k1")
        assert (state, value) == (FOUND, b"v1")
        assert mt.get(b"missing") == (NOT_FOUND, None)

    def test_newest_version_wins(self):
        mt = MemTable()
        mt.add(1, VTYPE_VALUE, b"k", b"old")
        mt.add(2, VTYPE_VALUE, b"k", b"new")
        assert mt.get(b"k") == (FOUND, b"new")

    def test_tombstone_shadows_value(self):
        mt = MemTable()
        mt.add(1, VTYPE_VALUE, b"k", b"v")
        mt.add(2, VTYPE_DELETE, b"k", b"")
        assert mt.get(b"k") == (DELETED, None)

    def test_snapshot_reads_see_old_versions(self):
        mt = MemTable()
        mt.add(1, VTYPE_VALUE, b"k", b"v1")
        mt.add(5, VTYPE_VALUE, b"k", b"v5")
        assert mt.get(b"k", snapshot_seq=3) == (FOUND, b"v1")
        assert mt.get(b"k", snapshot_seq=5) == (FOUND, b"v5")

    def test_snapshot_before_any_version(self):
        mt = MemTable()
        mt.add(10, VTYPE_VALUE, b"k", b"v")
        assert mt.get(b"k", snapshot_seq=5) == (NOT_FOUND, None)

    def test_entries_ordered_key_asc_seq_desc(self):
        mt = MemTable()
        mt.add(1, VTYPE_VALUE, b"b", b"1")
        mt.add(2, VTYPE_VALUE, b"a", b"2")
        mt.add(3, VTYPE_VALUE, b"b", b"3")
        entries = list(mt.entries())
        assert [(k, s) for k, s, _, _ in entries] == [(b"a", 2), (b"b", 3), (b"b", 1)]

    def test_size_accounting(self):
        mt = MemTable()
        assert mt.empty
        mt.add(1, VTYPE_VALUE, b"key", b"value")
        assert mt.approximate_size > len(b"key") + len(b"value")
        assert len(mt) == 1
        assert not mt.empty

    def test_seq_tracking(self):
        mt = MemTable()
        mt.add(5, VTYPE_VALUE, b"a", b"")
        mt.add(9, VTYPE_VALUE, b"b", b"")
        assert (mt.first_seq, mt.last_seq) == (5, 9)

    @given(
        st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=8),
                st.binary(max_size=8),
                st.booleans(),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_matches_dict_model(self, ops):
        mt = MemTable()
        model = {}
        for seq, (key, value, is_delete) in enumerate(ops, start=1):
            if is_delete:
                mt.add(seq, VTYPE_DELETE, key, b"")
                model[key] = None
            else:
                mt.add(seq, VTYPE_VALUE, key, value)
                model[key] = value
        for key, expected in model.items():
            state, value = mt.get(key)
            if expected is None:
                assert state == DELETED
            else:
                assert (state, value) == (FOUND, expected)
