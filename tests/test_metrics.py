"""Unit tests for the observability layer: histogram bucket math, counter
groups, event log, perf contexts, the sim-time sampler, the exporters, and
the collector slot discipline (reset / release / scoped_collector)."""

import json

import pytest

from repro.engine import LSMEngine, make_env, rocksdb_options
from repro.harness.metrics import MetricsCollector, scoped_collector
from tests.conftest import run_process
from repro.metrics import (
    CounterGroup,
    EventLog,
    LogHistogram,
    PerfContext,
    Sampler,
    StatsRegistry,
    install_stats,
    prometheus_text,
    snapshot_json,
    timeseries_csv,
    write_stats_files,
)

# ---------------------------------------------------------------------------
# LogHistogram bucket math
# ---------------------------------------------------------------------------


def test_histogram_empty():
    h = LogHistogram()
    assert h.count == 0
    assert h.percentile(50) == 0.0
    assert h.p99 == 0.0
    assert h.mean == 0.0
    assert h.max == 0.0
    assert h.summary()["count"] == 0


def test_histogram_single_sample_is_exact():
    h = LogHistogram()
    h.record(3.5e-4)
    # With one sample, every percentile clamps to the observed value.
    assert h.p50 == pytest.approx(3.5e-4)
    assert h.p99 == pytest.approx(3.5e-4)
    assert h.min == h.max == pytest.approx(3.5e-4)
    assert h.mean == pytest.approx(3.5e-4)


def test_histogram_percentiles_are_bucket_bounds_within_minmax():
    h = LogHistogram()
    for v in (1e-6, 2e-6, 4e-6, 8e-6, 1.6e-5, 3.2e-5):
        h.record(v)
    # Percentile answers sit on bucket upper bounds, clamped to [min, max].
    assert h.min <= h.p50 <= h.p95 <= h.p99 <= h.max
    assert h.p99 == pytest.approx(3.2e-5)
    assert h.count == 6
    assert h.sum == pytest.approx(6.3e-5)


def test_histogram_overflow_reports_observed_max():
    h = LogHistogram()
    huge = LogHistogram._BOUNDS[-1] * 100.0  # beyond the last bucket bound
    h.record(1e-3)
    h.record(huge)
    assert h.overflow == 1
    assert h.p99 == pytest.approx(huge)  # rank in overflow bucket -> max
    assert h.max == pytest.approx(huge)


def test_histogram_merge_matches_combined_recording():
    a, b, combined = LogHistogram(), LogHistogram(), LogHistogram()
    for i in range(1, 50):
        v = i * 1e-6
        (a if i % 2 else b).record(v)
        combined.record(v)
    a.merge(b)
    assert a.count == combined.count
    assert a.sum == pytest.approx(combined.sum)
    assert a.min == combined.min and a.max == combined.max
    assert a.buckets == combined.buckets
    assert a.summary() == combined.summary()


def test_histogram_merge_empty_cases():
    a, b = LogHistogram(), LogHistogram()
    a.merge(b)  # empty into empty
    assert a.count == 0
    b.record(2.0e-6)
    a.merge(b)  # non-empty into empty adopts min/max
    assert (a.min, a.max, a.count) == (2.0e-6, 2.0e-6, 1)
    b.merge(LogHistogram())  # empty into non-empty is a no-op
    assert b.count == 1


# ---------------------------------------------------------------------------
# CounterGroup / registry
# ---------------------------------------------------------------------------


def test_counter_group_api_and_registry_expansion():
    reg = StatsRegistry()
    grp = reg.group("engine.db-0")
    grp.add("flushes")
    grp.add("wal_bytes", 4096)
    assert grp.get("flushes") == 1.0
    assert grp.get("missing") == 0.0
    assert grp.as_dict() == {"flushes": 1.0, "wal_bytes": 4096.0}
    reg.counter("standalone").add(2)
    values = reg.counter_values()
    assert values["engine.db-0.flushes"] == 1.0
    assert values["engine.db-0.wal_bytes"] == 4096.0
    assert values["standalone"] == 2.0
    assert list(values) == sorted(values)  # export order is sorted


def test_registry_group_fresh_replaces_after_reopen():
    reg = StatsRegistry()
    reg.group("engine.db-0").add("flushes", 7)
    assert reg.group("engine.db-0").get("flushes") == 7.0  # get-or-create
    fresh = reg.group("engine.db-0", fresh=True)  # simulated crash+reopen
    assert fresh.get("flushes") == 0.0
    assert reg.counter_values().get("engine.db-0.flushes", 0.0) == 0.0


def test_registry_histogram_fresh_and_gauges():
    reg = StatsRegistry()
    reg.histogram("w.batch").record(1e-6)
    assert reg.histogram("w.batch").count == 1
    assert reg.histogram("w.batch", fresh=True).count == 0
    depth = [3]
    reg.gauge("q.depth", lambda: depth[0])
    assert reg.gauge_values() == {"q.depth": 3.0}
    depth[0] = 5
    assert reg.gauge_values() == {"q.depth": 5.0}


# ---------------------------------------------------------------------------
# EventLog
# ---------------------------------------------------------------------------


def test_event_log_begin_end_summary():
    log = EventLog()
    t0 = log.begin("write_stall", 1.0, engine="db-0")
    t1 = log.begin("compaction_backlog", 2.0)
    assert log.active_count() == 2
    assert log.active_count("write_stall") == 1
    log.end(t0, 1.5)
    assert log.active_count("write_stall") == 0
    summary = log.summary()
    assert summary["write_stall"] == {
        "count": 1, "total_seconds": 0.5, "active": 0,
    }
    assert summary["compaction_backlog"]["active"] == 1
    dicts = log.as_dicts()
    assert dicts[0]["duration"] == pytest.approx(0.5)
    assert dicts[0]["detail"] == {"engine": "db-0"}
    assert dicts[1]["end"] is None and dicts[1]["duration"] is None
    log.end(t1, 4.0)
    assert log.summary()["compaction_backlog"]["total_seconds"] == 2.0


def test_engine_stalls_land_in_event_log():
    """Write stalls and compaction backlog are recorded as begin/end events
    on the env's registry (the sampler output and checks.txt surface them)."""
    env = make_env(n_cores=4)
    options = rocksdb_options(
        write_buffer_size=1024,  # tiny memtable forces L0 pileup + stalls
        l0_compaction_trigger=2,
        l0_slowdown_trigger=3,
        l0_stop_trigger=4,
        target_file_size=1024,
        max_bytes_for_level_base=4096,
    )
    engine = run_process(env, LSMEngine.open(env, "db", options))

    def writer(t):
        ctx = env.cpu.new_thread("writer-%d" % t)
        for i in range(300):
            yield from engine.put(ctx, b"k%07d" % (t * 1000000 + i), b"v" * 100)

    for t in range(2):
        env.sim.spawn(writer(t), "w%d" % t)
    env.sim.run()
    summary = env.metrics.events.summary()
    assert summary["write_stall"]["count"] > 0
    assert summary["write_stall"]["total_seconds"] > 0.0
    assert "compaction_backlog" in summary
    # Every stall that began also ended, with a valid interval.
    for entry in env.metrics.events.as_dicts():
        if entry["kind"] == "write_stall":
            assert entry["end"] is not None
            assert entry["end"] >= entry["begin"]
            assert entry["detail"]["engine"] == "db"
            assert entry["detail"]["reason"]


# ---------------------------------------------------------------------------
# PerfContext
# ---------------------------------------------------------------------------


def test_perf_context_add_merge_as_dict():
    p = PerfContext()
    assert p.as_dict() == {}  # only nonzero fields export
    p.add("wal_appends")
    p.add("wal_bytes", 128)
    p.add_wait("wal", 1e-5)
    p.add_wait("cpu_queue", 2e-5)
    p.add_wait("unknown-category", 99.0)  # silently dropped
    assert p.as_dict() == {
        "wal_appends": 1.0,
        "wal_bytes": 128.0,
        "wal_wait_seconds": 1e-5,
        "queue_wait_seconds": 2e-5,
    }
    q = PerfContext()
    q.add("wal_appends", 2)
    q.merge(p)
    assert q.wal_appends == 3.0
    assert q.wal_bytes == 128.0


# ---------------------------------------------------------------------------
# Sampler
# ---------------------------------------------------------------------------


def _tick_env_with_gauge():
    env = make_env(n_cores=2)
    state = {"v": 0.0}
    env.metrics.gauge("test.v", lambda: state["v"])
    return env, state


def test_sampler_ticks_at_interval_and_stops():
    env, state = _tick_env_with_gauge()
    sampler = Sampler(env, interval=0.5)

    def driver():
        sampler.start()
        for i in range(5):
            state["v"] = float(i)
            yield env.sim.timeout(1.0)
        sampler.stop()

    env.sim.spawn(driver(), "driver")
    env.sim.run()  # must terminate: stopped ticker exits on wakeup
    times = [t for t, _row in sampler.samples]
    assert times == [pytest.approx(0.5 * k) for k in range(len(times))]
    assert len(times) >= 8
    assert "test.v" in sampler.column_names()


def test_sampler_start_is_idempotent_and_restartable():
    env, _state = _tick_env_with_gauge()
    sampler = Sampler(env, interval=0.25)

    def driver():
        sampler.start()
        sampler.start()  # second start must not spawn a second ticker
        yield env.sim.timeout(1.0)
        sampler.stop()
        yield env.sim.timeout(1.0)
        sampler.start()  # new generation, same sampler
        yield env.sim.timeout(0.6)
        sampler.stop()

    env.sim.spawn(driver(), "driver")
    env.sim.run()
    times = [t for t, _row in sampler.samples]
    assert times == sorted(times)
    assert len(times) == len(set(times))  # no duplicated ticks
    # A gap where the sampler was stopped, then samples resume.
    assert any(b - a > 0.25 * 1.5 for a, b in zip(times, times[1:]))


def test_sampler_rejects_nonpositive_interval():
    env, _state = _tick_env_with_gauge()
    with pytest.raises(ValueError):
        Sampler(env, interval=0.0)


def test_install_stats_enables_perf_and_installs_sampler():
    env = make_env(n_cores=2)
    assert env.metrics.perf_enabled is False
    assert env.metrics.sampler is None
    sampler = install_stats(env, interval_ms=2.0)
    assert env.metrics.perf_enabled is True
    assert env.metrics.sampler is sampler
    assert sampler.interval == pytest.approx(0.002)
    assert not sampler.running  # installed, not started


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _populated_registry():
    reg = StatsRegistry()
    reg.group("engine.db-0").add("flushes", 3)
    reg.counter("obm.rebalances").add(1)
    reg.gauge("obm.queue_depth", lambda: 4.0)
    reg.histogram("w0.batch").record(2e-6)
    reg.provider("device.bytes", lambda: {"wal": 100.0, "flush": 200.0})
    token = reg.events.begin("write_stall", 0.5)
    reg.events.end(token, 0.75)
    return reg


def test_snapshot_json_round_trips():
    doc = json.loads(snapshot_json(_populated_registry()))
    assert doc["counters"]["engine.db-0.flushes"] == 3.0
    assert doc["gauges"]["obm.queue_depth"] == 4.0
    assert doc["histograms"]["w0.batch"]["count"] == 1
    assert doc["providers"]["device.bytes"]["flush"] == 200.0
    assert doc["events"][0]["kind"] == "write_stall"
    assert doc["events"][0]["duration"] == pytest.approx(0.25)


def test_prometheus_text_format():
    text = prometheus_text(_populated_registry())
    assert "# HELP p2kvs_engine_db_0_flushes counter engine.db-0.flushes" in text
    assert "# TYPE p2kvs_engine_db_0_flushes counter" in text
    assert "p2kvs_engine_db_0_flushes 3" in text
    assert "# TYPE p2kvs_obm_queue_depth gauge" in text
    assert "# TYPE p2kvs_w0_batch histogram" in text
    assert 'p2kvs_w0_batch_bucket{le="+Inf"} 1' in text
    assert "p2kvs_w0_batch_sum " in text
    assert "p2kvs_w0_batch_count 1" in text
    assert text.endswith("\n")


def test_prometheus_histogram_buckets_are_cumulative():
    from repro.metrics.registry import LogHistogram

    reg = StatsRegistry()
    hist = reg.histogram("lat")
    for v in (1e-6, 2e-6, 5e-6, 1e-3):
        hist.record(v)
    hist.record(1e12)  # overflow bucket
    text = prometheus_text(reg)
    lines = [l for l in text.splitlines() if l.startswith("p2kvs_lat_bucket")]
    # One line per log-spaced bound, plus +Inf.
    assert len(lines) == LogHistogram.N_BUCKETS + 1
    counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
    assert counts == sorted(counts)  # cumulative, monotone
    assert counts[-2] == 4  # last finite bound: everything but the overflow
    assert lines[-1] == 'p2kvs_lat_bucket{le="+Inf"} 5'
    assert "p2kvs_lat_count 5" in text
    # Byte-stable across repeated exports.
    assert prometheus_text(reg) == text


def test_timeseries_csv_shape():
    env, state = _tick_env_with_gauge()
    sampler = Sampler(env, interval=0.5)

    def driver():
        sampler.start()
        state["v"] = 7.0
        yield env.sim.timeout(1.2)
        sampler.stop()

    env.sim.spawn(driver(), "driver")
    env.sim.run()
    csv = timeseries_csv(sampler)
    lines = csv.strip().split("\n")
    header = lines[0].split(",")
    assert header[0] == "time"
    assert "test.v" in header  # alongside the machine gauges make_env adds
    assert len(lines) >= 3  # header + ticks at 0, 0.5, 1.0
    col = header.index("test.v")
    assert lines[2].split(",")[col] == "7"


def test_write_stats_files(tmp_path):
    env, _state = _tick_env_with_gauge()
    sampler = install_stats(env, interval_ms=500.0)

    def driver():
        sampler.start()
        yield env.sim.timeout(1.0)
        sampler.stop()

    env.sim.spawn(driver(), "driver")
    env.sim.run()
    base = str(tmp_path / "stats")
    paths = write_stats_files(env.metrics, base)
    assert sorted(paths) == ["csv", "json", "prom"]
    for path in paths.values():
        with open(path) as f:
            assert f.read().strip()
    # Without a sampler the CSV is skipped.
    bare = write_stats_files(StatsRegistry(), str(tmp_path / "bare"))
    assert sorted(bare) == ["json", "prom"]


# ---------------------------------------------------------------------------
# Collector slot discipline
# ---------------------------------------------------------------------------


def test_collector_overlap_asserts_and_release_frees_slot(env):
    a = MetricsCollector(env, "sys-a")
    a.start()
    b = MetricsCollector(env, "sys-b")
    with pytest.raises(AssertionError, match="active MetricsCollector"):
        b.start()
    a.release()
    b.start()  # slot is free again
    b.release()


def test_collector_reset_clears_state(env):
    c = MetricsCollector(env, "sys")
    c.start()
    c.record_latency("write", 1e-5)
    c.reset()
    assert getattr(env, "_active_collector", None) is None
    assert c.latency == {}
    c.start()  # a reset collector can measure a fresh window
    metrics = c.finish(n_ops=0, user_bytes_written=0.0, memory_bytes=0)
    assert metrics.n_ops == 0


def test_scoped_collector_releases_on_exception(env):
    with pytest.raises(RuntimeError):
        with scoped_collector(env, "sys") as c:
            c.start()
            raise RuntimeError("boom")
    assert getattr(env, "_active_collector", None) is None
    with scoped_collector(env, "sys2") as c2:
        c2.start()  # previous scope must not leak into this one


# ---------------------------------------------------------------------------
# Zero overhead with the edge log off (and on)
# ---------------------------------------------------------------------------


def _stats_outputs(with_edgelog):
    """Run a small write workload with stats on and return every exporter's
    output plus the final simulated clock."""
    from repro.critpath import install_edgelog

    env = make_env(n_cores=4)
    if with_edgelog:
        install_edgelog(env)
    install_stats(env)
    engine = run_process(env, LSMEngine.open(env, "db", rocksdb_options()))

    def writer():
        ctx = env.cpu.new_thread("writer")
        for i in range(200):
            yield from engine.put(ctx, b"k%07d" % i, b"v" * 100)

    env.sim.spawn(writer(), "w")
    env.sim.run()
    return {
        "now": env.sim.now,
        "prom": prometheus_text(env.metrics),
        "json": snapshot_json(env.metrics),
    }


def test_edgelog_does_not_change_metrics_exports():
    """Installing the critical-path edge log must not move simulated time or
    any exported metric: recording is pure observation (docs/CRITPATH.md's
    determinism contract, checked here at the exporter level)."""
    plain = _stats_outputs(with_edgelog=False)
    logged = _stats_outputs(with_edgelog=True)
    assert plain["now"] == logged["now"]
    assert plain["prom"] == logged["prom"]
    assert plain["json"] == logged["json"]
