"""Tests for the online health-monitoring plane (repro.monitor).

Covers the promises docs/MONITOR.md makes: windowed telemetry semantics
(counter deltas, gauge reads, histogram-mean windows, bounded retention),
every alert rule's positive and negative fixtures (including the burn-rate
rule's fast-only / slow-only negatives), deterministic incident timelines
across reruns and ``--schedule-seed`` perturbation, zero page-severity
false positives on the pinned clean serve scenarios, and scored fault
detection (finite MTTD) through the faultbench campaign.
"""

import json

import pytest

from repro.engine import make_env
from repro.metrics.export import prometheus_text, timeseries_csv
from repro.metrics.registry import EventLog, StatsRegistry
from repro.metrics.sampler import Sampler
from repro.monitor import (
    EWMA,
    BurnRate,
    HealthMonitor,
    QueueSaturation,
    RateOfChange,
    SeriesTap,
    ShardSilence,
    Threshold,
    WindowStore,
    render_narrative,
    score_detection,
)
from repro.tools import faultbench, monitor as monitor_tool, serve


# ---------------------------------------------------------------------------
# Windowed telemetry
# ---------------------------------------------------------------------------


class TestEWMA:
    def test_first_sample_initialises(self):
        ew = EWMA(alpha=0.5)
        assert ew.value is None
        assert ew.update(10.0) == 10.0

    def test_smoothing(self):
        ew = EWMA(alpha=0.5)
        ew.update(0.0)
        assert ew.update(8.0) == 4.0
        assert ew.update(8.0) == 6.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EWMA(alpha=0.0)
        with pytest.raises(ValueError):
            EWMA(alpha=1.5)


class TestSeriesTap:
    def test_counter_windows_to_deltas(self):
        box = {"v": 10.0}
        tap = SeriesTap("c", "counter", lambda: box["v"])
        tap.baseline()
        box["v"] = 25.0
        assert tap.observe() == 15.0
        box["v"] = 25.0
        assert tap.observe() == 0.0

    def test_counter_without_baseline_measures_from_zero(self):
        tap = SeriesTap("c", "counter", lambda: 7.0)
        assert tap.observe() == 7.0

    def test_gauge_reads_instantaneous(self):
        box = {"v": 3.0}
        tap = SeriesTap("g", "gauge", lambda: box["v"])
        assert tap.observe() == 3.0
        box["v"] = 0.0
        assert tap.observe() == 0.0

    def test_hist_mean_is_window_local(self):
        box = {"count": 2, "sum": 10.0}
        tap = SeriesTap("h", "hist_mean", lambda: (box["count"], box["sum"]))
        tap.baseline()
        box["count"], box["sum"] = 4, 30.0  # 2 new obs totalling 20
        assert tap.observe() == 10.0
        assert tap.observe() == 0.0  # empty window -> 0, not stale mean

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SeriesTap("x", "rate", lambda: 0)


class TestWindowStore:
    def test_retention_drops_oldest_and_counts(self):
        store = WindowStore(retention=3)
        for i in range(5):
            store.append("s", float(i), 1.0, float(i))
        assert store.values("s") == [2.0, 3.0, 4.0]
        assert store.dropped("s") == 2
        assert store.dropped() == 2
        assert store.window_count("s") == 5

    def test_last_and_ewma(self):
        store = WindowStore(ewma_alpha=1.0)
        assert store.last("s") is None
        assert store.ewma("s") is None
        store.append("s", 1.0, 1.0, 4.0)
        assert store.last("s") == 4.0
        assert store.ewma("s") == 4.0

    def test_summary_shape(self):
        store = WindowStore()
        store.append("a", 1.0, 1.0, 2.0)
        store.append("a", 2.0, 1.0, 6.0)
        digest = store.summary()["a"]
        assert digest["windows"] == 2
        assert digest["last"] == 6.0
        assert digest["max"] == 6.0
        assert digest["dropped"] == 0


# ---------------------------------------------------------------------------
# Alert rules (fixture-level: hand-built window stores)
# ---------------------------------------------------------------------------


def _feed(store, series, values, t0=0.0, dt=1.0):
    t = t0
    for v in values:
        t += dt
        store.append(series, t, dt, float(v))
    return t


class TestThresholdRule:
    def test_fires_after_consecutive_breaches(self):
        store = WindowStore()
        rule = Threshold("r", "s", limit=5, for_windows=2)
        _feed(store, "s", [7])
        assert rule.evaluate(store, 1.0) is None  # streak 1 of 2
        _feed(store, "s", [8], t0=1.0)
        state, evidence = rule.evaluate(store, 2.0)
        assert state == "fire"
        assert evidence["streak"] == 2
        assert len(evidence["windows"]) == 2

    def test_streak_resets_on_quiet_window(self):
        store = WindowStore()
        rule = Threshold("r", "s", limit=5, for_windows=2)
        for value in [7, 0, 7]:
            _feed(store, "s", [value])
            assert rule.evaluate(store, 0.0) is None

    def test_resolves_when_back_under(self):
        store = WindowStore()
        rule = Threshold("r", "s", limit=1)
        _feed(store, "s", [2])
        assert rule.evaluate(store, 1.0)[0] == "fire"
        _feed(store, "s", [0])
        assert rule.evaluate(store, 2.0)[0] == "resolve"

    def test_no_data_no_transition(self):
        assert Threshold("r", "s", limit=1).evaluate(WindowStore(), 0.0) is None


class TestQueueSaturationRule:
    def test_limit_is_fraction_of_cap(self):
        rule = QueueSaturation("q", "depth", cap=48, fraction=0.9)
        assert rule.limit == pytest.approx(43.2)
        assert rule.severity == "warn"

    def test_fires_only_when_pinned(self):
        store = WindowStore()
        rule = QueueSaturation("q", "depth", cap=10, fraction=0.9,
                               for_windows=2)
        _feed(store, "depth", [9])
        assert rule.evaluate(store, 1.0) is None
        _feed(store, "depth", [10])
        assert rule.evaluate(store, 2.0)[0] == "fire"


class TestRateOfChangeRule:
    def test_fires_on_spike_over_baseline(self):
        store = WindowStore()
        rule = RateOfChange("r", "lat", factor=3.0, baseline_windows=4)
        _feed(store, "lat", [1, 1, 1, 1])
        for _ in range(4):
            assert rule.evaluate(store, 0.0) is None
        _feed(store, "lat", [5])
        state, evidence = rule.evaluate(store, 5.0)
        assert state == "fire"
        assert evidence["baseline"] == 1.0

    def test_min_baseline_guards_wakeup_from_zero(self):
        store = WindowStore()
        rule = RateOfChange("r", "lat", factor=3.0, baseline_windows=2,
                            min_baseline=0.5)
        _feed(store, "lat", [0, 0, 100])
        assert rule.evaluate(store, 3.0) is None  # baseline 0 < min -> mute


class TestBurnRateRule:
    def _rule(self):
        # slo=0.9 -> budget 10%; burn 1.0 at exactly 10% errors.
        return BurnRate("b", "bad", "total", slo=0.9, burn=2.0,
                        fast_windows=2, slow_windows=4)

    def test_fires_when_both_lookbacks_burn(self):
        store, rule = WindowStore(), self._rule()
        _feed(store, "total", [10, 10, 10, 10])
        _feed(store, "bad", [2, 2, 2, 2])  # 20% errors = burn 2.0
        state, evidence = rule.evaluate(store, 4.0)
        assert state == "fire"
        assert evidence["burn_fast"] == pytest.approx(2.0)
        assert evidence["burn_slow"] == pytest.approx(2.0)

    def test_fast_only_blip_does_not_fire(self):
        store, rule = WindowStore(), self._rule()
        _feed(store, "total", [10, 10, 10, 10])
        _feed(store, "bad", [0, 0, 2, 2])  # fast burns 2.0, slow only 1.0
        assert rule.evaluate(store, 4.0) is None

    def test_slow_only_history_does_not_fire(self):
        store, rule = WindowStore(), self._rule()
        _feed(store, "total", [10, 10, 10, 10])
        _feed(store, "bad", [4, 4, 0, 0])  # slow burns 2.0, fast 0 (recovered)
        assert rule.evaluate(store, 4.0) is None

    def test_zero_traffic_burns_nothing(self):
        store, rule = WindowStore(), self._rule()
        _feed(store, "total", [0, 0])
        _feed(store, "bad", [0, 0])
        assert rule.evaluate(store, 2.0) is None

    def test_resolves_when_fast_window_recovers(self):
        store, rule = WindowStore(), self._rule()
        _feed(store, "total", [10, 10, 10, 10])
        _feed(store, "bad", [2, 2, 2, 2])
        assert rule.evaluate(store, 4.0)[0] == "fire"
        _feed(store, "total", [10, 10], t0=4.0)
        _feed(store, "bad", [0, 0], t0=4.0)
        assert rule.evaluate(store, 6.0)[0] == "resolve"


class TestShardSilenceRule:
    def test_never_fires_unarmed(self):
        store = WindowStore()
        rule = ShardSilence("w", "progress", for_windows=2)
        _feed(store, "progress", [0])
        for _ in range(5):
            assert rule.evaluate(store, 0.0) is None

    def test_fires_after_silence_and_resolves_on_progress(self):
        store = WindowStore()
        rule = ShardSilence("w", "progress", for_windows=2)
        _feed(store, "progress", [5])
        assert rule.evaluate(store, 1.0) is None  # armed
        _feed(store, "progress", [0])
        assert rule.evaluate(store, 2.0) is None  # silent 1 of 2
        _feed(store, "progress", [0])
        state, evidence = rule.evaluate(store, 3.0)
        assert state == "fire"
        assert evidence["silent_windows"] == 2
        _feed(store, "progress", [3])
        assert rule.evaluate(store, 4.0)[0] == "resolve"

    def test_guard_series_explains_the_quiet(self):
        store = WindowStore()
        rule = ShardSilence("w", "progress", for_windows=2,
                            unless_series="migrating")
        _feed(store, "progress", [5])
        _feed(store, "migrating", [0])
        assert rule.evaluate(store, 1.0) is None
        # Quiet windows during an active migration never count as silence.
        for t in (2.0, 3.0, 4.0):
            _feed(store, "progress", [0])
            _feed(store, "migrating", [1])
            assert rule.evaluate(store, t) is None
        # Migration over: the silence clock starts fresh.
        _feed(store, "progress", [0])
        _feed(store, "migrating", [0])
        assert rule.evaluate(store, 5.0) is None
        _feed(store, "progress", [0])
        _feed(store, "migrating", [0])
        assert rule.evaluate(store, 6.0)[0] == "fire"


# ---------------------------------------------------------------------------
# HealthMonitor end-to-end on the simulator
# ---------------------------------------------------------------------------


def _run_monitored_sim(schedule_seed=None):
    """A tiny simulated workload: a counter that progresses then halts."""
    env = make_env(n_cores=2)
    if schedule_seed is not None:
        env.sim.perturb_schedule(schedule_seed)
    work = env.metrics.counter("toy.work")
    mon = HealthMonitor(env, window=1e-3)
    mon.add_series("toy.work", "counter", lambda: work.value)
    mon.add_rule(ShardSilence("toy-silence", "toy.work", for_windows=2))

    def workload():
        for _ in range(5):
            work.add(3)
            yield env.sim.timeout(1e-3)
        # Go silent for 4 windows, then resume.
        yield env.sim.timeout(4e-3)
        work.add(1)
        yield env.sim.timeout(1e-3)
        mon.stop(flush=True)

    env.sim.spawn(workload(), "toy")
    mon.start()
    env.sim.run()
    return mon


class TestHealthMonitor:
    def test_silence_fires_and_resolves(self):
        mon = _run_monitored_sim()
        assert [i.rule for i in mon.incidents] == ["toy-silence"]
        incident = mon.incidents[0]
        assert incident.resolved_at is not None
        assert incident.fired_at < incident.resolved_at

    def test_timeline_identical_across_reruns_and_seeds(self):
        base = json.dumps(_run_monitored_sim().timeline(), sort_keys=True)
        rerun = json.dumps(_run_monitored_sim().timeline(), sort_keys=True)
        perturbed = json.dumps(
            _run_monitored_sim(schedule_seed=7).timeline(), sort_keys=True
        )
        assert base == rerun == perturbed

    def test_finalize_synthesizes_silence_windows(self):
        env = make_env(n_cores=2)
        work = env.metrics.counter("toy.work")
        mon = HealthMonitor(env, window=1e-3)
        mon.add_series("toy.work", "counter", lambda: work.value)
        mon.add_rule(ShardSilence("toy-silence", "toy.work", for_windows=2))

        def workload():
            for _ in range(3):
                work.add(1)
                yield env.sim.timeout(1e-3)
            # Without a stop the ticker would run the heap forever; the
            # crash path (faultbench) instead aborts the whole sim.
            mon.stop(flush=True)

        env.sim.spawn(workload(), "toy")
        mon.start()
        env.sim.run()
        # The sim is over ("crash"); the scraper keeps observing silence.
        n = mon.finalize(env.sim.now + 5e-3)
        assert n >= 2
        assert mon.synthetic_windows == n
        pages = mon.page_incidents()
        assert len(pages) == 1 and pages[0].synthetic

    def test_stop_without_flush_drops_partial_window(self):
        env = make_env(n_cores=2)
        mon = HealthMonitor(env, window=1.0)
        mon.add_series("g", "gauge", lambda: 1.0)

        def workload():
            yield env.sim.timeout(0.5)
            mon.stop(flush=False)

        env.sim.spawn(workload(), "toy")
        mon.start()
        env.sim.run()
        assert mon.windows_observed == 0

    def test_alert_counts_split_severities(self):
        mon = _run_monitored_sim()
        counts = mon.alert_counts()
        assert counts == {"page": 1, "warn": 0}


class TestDetectionScoring:
    def test_clean_run_counts_pages_as_false_positives(self):
        mon = _run_monitored_sim()  # fires one (spurious) page
        report = score_detection(mon, None, "clean")
        assert report["detected"] is None
        assert report["false_positives"] == 1

    def test_faulted_run_scores_mttd(self):
        mon = _run_monitored_sim()
        injected_at = mon.incidents[0].fired_at - 1e-3
        report = score_detection(
            mon, {"injected_at": injected_at, "kind": "crash", "site": None},
            "faulted",
        )
        assert report["detected"] is True
        assert report["detected_by"] == "toy-silence"
        assert report["mttd_s"] == pytest.approx(1e-3)
        assert report["false_positives"] == 0

    def test_narrative_renders_fire_and_detection(self):
        mon = _run_monitored_sim()
        truth = {"injected_at": 0.005, "kind": "crash", "site": "wal"}
        text = render_narrative(
            mon.timeline(), score_detection(mon, truth, "x")
        )
        assert "toy-silence" in text
        assert "MTTD" in text


# ---------------------------------------------------------------------------
# Bounded metrics retention (EventLog + Sampler)
# ---------------------------------------------------------------------------


class TestEventLogBound:
    def test_cap_drops_new_entries_and_counts(self):
        log = EventLog(max_entries=2)
        t1 = log.begin("a", 1.0)
        t2 = log.begin("a", 2.0)
        t3 = log.begin("a", 3.0)
        assert (t1, t2, t3) == (0, 1, -1)
        assert log.dropped == 1
        log.end(t3, 4.0)  # dropped token: a no-op, not an IndexError
        assert len(log.entries) == 2

    def test_snapshot_surfaces_drop_count(self):
        registry = StatsRegistry()
        registry.events = EventLog(max_entries=1)
        registry.events.begin("a", 1.0)
        registry.events.begin("a", 2.0)
        assert registry.snapshot()["events_dropped"] == 1


class TestSamplerBound:
    def test_cap_evicts_oldest_rows(self):
        env = make_env(n_cores=2)
        sampler = Sampler(env, interval=1.0, max_samples=3)
        for _ in range(5):
            sampler.sample_once()
        assert len(sampler.samples) == 3
        assert sampler.dropped == 2

    def test_csv_carries_drop_comment_only_when_dropped(self):
        env = make_env(n_cores=2)
        env.metrics.gauge("g", lambda: 1.0)
        sampler = Sampler(env, interval=1.0, max_samples=2)
        sampler.sample_once()
        assert not timeseries_csv(sampler).startswith("#")
        for _ in range(3):
            sampler.sample_once()
        assert timeseries_csv(sampler).startswith("# dropped_samples=2")


class TestPrometheusShardLabels:
    def test_shard_metrics_collapse_into_labelled_family(self):
        registry = StatsRegistry()
        for shard in (0, 1):
            grp = registry.group("service.shard-%d" % shard)
            grp.add("completed", 10 + shard)
        registry.counter("service.offered").add(30)
        text = prometheus_text(registry)
        assert 'p2kvs_service_completed{shard="0"} 10' in text
        assert 'p2kvs_service_completed{shard="1"} 11' in text
        assert "p2kvs_service_shard_0_completed" not in text
        # One HELP/TYPE block for the family, not one per shard.
        assert text.count("# TYPE p2kvs_service_completed counter") == 1
        # Plain names are untouched.
        assert "p2kvs_service_offered 30" in text

    def test_shard_gauges_get_labels_too(self):
        registry = StatsRegistry()
        registry.gauge("service.shard-3.queue_depth", lambda: 7.0)
        text = prometheus_text(registry)
        assert 'p2kvs_service_queue_depth{shard="3"} 7' in text


# ---------------------------------------------------------------------------
# CLI integration: monitored serve scenarios + the faultbench scorecard
# ---------------------------------------------------------------------------

_MON_ARGS = ["--ops", "400", "--shards", "2"]


def _mon_args(tmp_path, tag, extra=()):
    return _MON_ARGS + ["--json", str(tmp_path / ("%s.json" % tag))] + list(extra)


class TestMonitorCLI:
    def test_document_byte_identical_across_reruns_and_seeds(
        self, tmp_path, capsys
    ):
        assert monitor_tool.main(_mon_args(tmp_path, "a")) == 0
        assert monitor_tool.main(_mon_args(tmp_path, "b")) == 0
        assert monitor_tool.main(
            _mon_args(tmp_path, "c", ["--schedule-seed", "7"])
        ) == 0
        a = (tmp_path / "a.json").read_bytes()
        assert a == (tmp_path / "b.json").read_bytes()
        assert a == (tmp_path / "c.json").read_bytes()

    def test_pinned_clean_scenarios_raise_zero_pages(self, tmp_path, capsys):
        # The zero-false-positive contract, over all four pinned scenarios
        # (scaled down; the full-size runs back this in make monitor-smoke).
        for scenario in ("uniform", "hotkey", "migration", "diurnal"):
            argv = _mon_args(tmp_path, scenario) + [
                "--scenario", scenario, "--ops", "600", "--expect-clean",
            ]
            assert monitor_tool.main(argv) == 0, scenario
            document = json.loads(
                (tmp_path / ("%s.json" % scenario)).read_text()
            )
            assert document["health"]["alerts"]["page"] == 0, scenario
            assert document["detection"]["false_positives"] == 0, scenario

    def test_fault_run_scores_detection(self, tmp_path, capsys):
        argv = _mon_args(tmp_path, "fault") + [
            "--fault-rate", "0.02",
            "--detection-out", str(tmp_path / "detection.json"),
        ]
        assert monitor_tool.main(argv) == 0
        detection = json.loads((tmp_path / "detection.json").read_text())
        assert detection["detected"] is True
        assert detection["mttd_s"] > 0
        assert detection["ground_truth"]["kind"] == "device-fault"

    def test_replay_renders_narrative(self, tmp_path, capsys):
        assert monitor_tool.main(_mon_args(tmp_path, "r")) == 0
        capsys.readouterr()
        assert monitor_tool.main(
            ["--replay", str(tmp_path / "r.json")]
        ) == 0
        assert "monitor:" in capsys.readouterr().out

    def test_serve_embeds_health_block(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        assert serve.main([
            "--scenario", "uniform", "--shards", "2", "--ops", "300",
            "--monitor", "--json", str(out),
        ]) == 0
        report = json.loads(out.read_text())
        assert report["health"]["windows_observed"] > 0
        assert set(report["health"]["alerts"]) == {"page", "warn"}
        assert "service.completed" in report["health"]["series"]
        assert report["detection"]["false_positives"] == 0


class TestFaultbenchDetection:
    def test_transient_and_crash_scenarios_detect(self, tmp_path, capsys):
        out = tmp_path / "detection.json"
        rc = faultbench.main([
            "--fault-seed", "7",
            "--scenario", "engine-nvme-transient",
            "--scenario", "engine-nvme-crash-wal-append",
            "--detection-out", str(out),
        ])
        assert rc == 0
        scorecard = json.loads(out.read_text())
        assert scorecard["summary"]["n_scored"] == 2
        assert scorecard["summary"]["n_detected"] == 2
        by_name = {d["scenario"]: d for d in scorecard["scenarios"]}
        transient = by_name["engine-nvme-transient"]
        assert transient["detected_by"] == "device-error-rate"
        crash = by_name["engine-nvme-crash-wal-append"]
        assert crash["detected_by"] == "shard-silence"
        for d in by_name.values():
            assert d["mttd_s"] > 0
            assert d["false_positives"] == 0
