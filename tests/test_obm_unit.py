"""Unit tests for Algorithm 1 (opportunistic batching) in isolation."""

from repro.core.obm import collect_batch
from repro.core.requests import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_SCAN,
    OP_WRITEBATCH,
    Request,
    SHUTDOWN,
)
from repro.sim import FIFOQueue, Simulator


def make_queue(*requests):
    q = FIFOQueue(Simulator())
    for r in requests:
        q.put(r)
    return q


class TestCollectBatch:
    def test_merges_consecutive_writes(self):
        q = make_queue(Request(OP_PUT, key=b"b"), Request(OP_DELETE, key=b"c"))
        batch = collect_batch(Request(OP_PUT, key=b"a"), q)
        assert len(batch) == 3
        assert q.empty

    def test_merges_consecutive_reads(self):
        q = make_queue(Request(OP_GET, key=b"y"), Request(OP_GET, key=b"z"))
        batch = collect_batch(Request(OP_GET, key=b"x"), q)
        assert [r.key for r in batch] == [b"x", b"y", b"z"]

    def test_stops_at_class_boundary_without_reordering(self):
        q = make_queue(
            Request(OP_PUT, key=b"b"),
            Request(OP_GET, key=b"r"),
            Request(OP_PUT, key=b"c"),
        )
        batch = collect_batch(Request(OP_PUT, key=b"a"), q)
        assert [r.key for r in batch] == [b"a", b"b"]
        assert q.peek().op == OP_GET  # the boundary request stays queued

    def test_respects_cap(self):
        q = make_queue(*[Request(OP_PUT, key=b"k%d" % i) for i in range(10)])
        batch = collect_batch(Request(OP_PUT, key=b"first"), q, max_batch=4)
        assert len(batch) == 4
        assert len(q) == 7

    def test_scan_never_merges(self):
        q = make_queue(Request(OP_SCAN, begin=b"a", count=5))
        batch = collect_batch(Request(OP_SCAN, begin=b"z", count=5), q)
        assert len(batch) == 1
        assert len(q) == 1

    def test_no_merge_flag_isolates_txn_fragments(self):
        # A transaction WriteBatch must not be merged with other requests...
        q = make_queue(Request(OP_PUT, key=b"b"))
        txn = Request(OP_WRITEBATCH, no_merge=True)
        assert collect_batch(txn, q) == [txn]
        # ...and must not be swallowed by a preceding mergeable batch.
        q = make_queue(Request(OP_WRITEBATCH, no_merge=True))
        batch = collect_batch(Request(OP_PUT, key=b"a"), q)
        assert len(batch) == 1

    def test_stops_at_shutdown_sentinel(self):
        q = FIFOQueue(Simulator())
        q.put(SHUTDOWN)
        batch = collect_batch(Request(OP_PUT, key=b"a"), q)
        assert len(batch) == 1
        assert q.peek() is SHUTDOWN

    def test_empty_queue_degenerates_to_single(self):
        """Under light load OBM degrades to unbatched execution (§4.3)."""
        q = FIFOQueue(Simulator())
        batch = collect_batch(Request(OP_GET, key=b"k"), q)
        assert len(batch) == 1


class TestRangeMergeHelpers:
    def test_merge_sorted_results(self):
        from repro.core.range_query import merge_sorted_results

        merged = merge_sorted_results(
            [[(b"a", b"1"), (b"d", b"4")], [(b"b", b"2")], [(b"c", b"3")]]
        )
        assert [k for k, _ in merged] == [b"a", b"b", b"c", b"d"]

    def test_merge_with_limit(self):
        from repro.core.range_query import merge_sorted_results

        merged = merge_sorted_results(
            [[(b"a", b"1"), (b"c", b"3")], [(b"b", b"2")]], limit=2
        )
        assert [k for k, _ in merged] == [b"a", b"b"]

    def test_merge_empty(self):
        from repro.core.range_query import merge_sorted_results

        assert merge_sorted_results([]) == []
        assert merge_sorted_results([[], []]) == []
