"""Tests for engine options/presets and the sim priority queue."""

import pytest

from repro.engine.costs import CostModel
from repro.engine.options import (
    EngineOptions,
    leveldb_options,
    pebblesdb_options,
    rocksdb_options,
)
from repro.sim import PriorityQueue, QueueEmpty, Simulator


class TestEngineOptions:
    def test_presets_differ_as_documented(self):
        rocks = rocksdb_options()
        level = leveldb_options()
        pebbles = pebblesdb_options()
        assert rocks.concurrent_memtable and rocks.pipelined_write
        assert rocks.supports_multiget
        assert not level.concurrent_memtable
        assert not level.supports_multiget
        assert level.supports_batch_write
        assert pebbles.compaction_style == "flsm"
        assert not pebbles.concurrent_memtable

    def test_overrides_apply(self):
        opts = rocksdb_options(write_buffer_size=123, max_group_size=7)
        assert opts.write_buffer_size == 123
        assert opts.max_group_size == 7
        assert opts.concurrent_memtable  # preset preserved

    def test_clone_does_not_mutate_original(self):
        base = rocksdb_options()
        clone = base.clone(write_buffer_size=1)
        assert base.write_buffer_size != 1
        assert clone.write_buffer_size == 1

    def test_level_byte_budgets_grow_geometrically(self):
        opts = EngineOptions(max_bytes_for_level_base=100, level_size_multiplier=10)
        assert opts.max_bytes_for_level(1) == 100
        assert opts.max_bytes_for_level(2) == 1000
        assert opts.max_bytes_for_level(3) == 10000
        with pytest.raises(ValueError):
            opts.max_bytes_for_level(0)

    def test_cost_model_calibration_anchors(self):
        """The single-thread anchors from the paper's Figure 6."""
        costs = CostModel()
        # WAL ~2.1 us per op at 1 thread: encode + setup.
        wal = costs.wal_record_cost(150) + costs.wal_write_setup
        assert 1.5e-6 < wal < 3.0e-6
        # MemTable ~2.9 us per insert at a typical fill level.
        mem = costs.memtable_insert_cost(50_000)
        assert 2.0e-6 < mem < 5.0e-6

    def test_memtable_cost_grows_with_contention(self):
        costs = CostModel()
        alone = costs.memtable_insert_cost(1000, concurrency=1)
        crowded = costs.memtable_insert_cost(1000, concurrency=32)
        assert crowded > alone


class TestPriorityQueue:
    def test_lower_priority_pops_first(self):
        q = PriorityQueue(Simulator())
        q.put("low", priority=5)
        q.put("urgent", priority=1)
        q.put("mid", priority=3)
        assert q.try_pop() == "urgent"
        assert q.try_pop() == "mid"
        assert q.try_pop() == "low"

    def test_fifo_within_priority(self):
        q = PriorityQueue(Simulator())
        for tag in ("a", "b", "c"):
            q.put(tag, priority=1)
        assert [q.try_pop() for _ in range(3)] == ["a", "b", "c"]

    def test_blocking_get(self):
        sim = Simulator()
        q = PriorityQueue(sim)
        got = []

        def consumer():
            item = yield q.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(2.0)
            q.put("x", priority=9)

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == [("x", 2.0)]

    def test_peek_and_empty(self):
        q = PriorityQueue(Simulator())
        assert q.empty
        assert q.peek() is None
        with pytest.raises(QueueEmpty):
            q.try_pop()
        q.put("only", priority=2)
        assert q.peek() == "only"
        assert len(q) == 1

    def test_counters(self):
        q = PriorityQueue(Simulator())
        for i in range(4):
            q.put(i, priority=i)
        assert q.total_enqueued == 4
        assert q.max_depth == 4
