"""Functional tests for the p2KVS framework: routing, OBM, ranges, async."""

import pytest

from repro.core import P2KVS, HashRouter, RangeRouter, adapter_factory
from repro.engine import WriteBatch
from repro.engine.env import make_env
from tests.conftest import run_process


def key(i):
    return b"user%012d" % i


def value(i):
    return b"value%08d" % i


def open_p2kvs(env, **kwargs):
    kwargs.setdefault("n_workers", 4)
    return run_process(env, P2KVS.open(env, **kwargs))


class TestRouter:
    def test_hash_router_is_deterministic_and_in_range(self):
        router = HashRouter(8)
        for i in range(1000):
            w = router.route(key(i))
            assert 0 <= w < 8
            assert router.route(key(i)) == w

    def test_hash_router_balances_uniform_keys(self):
        router = HashRouter(8)
        counts = router.histogram(key(i) for i in range(8000))
        assert min(counts) > 0.7 * (8000 / 8)
        assert max(counts) < 1.3 * (8000 / 8)

    def test_hash_router_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            HashRouter(0)

    def test_range_router(self):
        router = RangeRouter([b"g", b"p"])
        assert router.route(b"apple") == 0
        assert router.route(b"grape") == 1
        assert router.route(b"zebra") == 2

    def test_range_router_rejects_unsorted(self):
        with pytest.raises(ValueError):
            RangeRouter([b"p", b"g"])


class TestBasicOps:
    def test_put_get_roundtrip(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(50):
                yield from kvs.put(ctx, key(i), value(i))
            out = []
            for i in range(50):
                out.append((yield from kvs.get(ctx, key(i))))
            return out

        assert run_process(env, work()) == [value(i) for i in range(50)]

    def test_delete(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")

        def work():
            yield from kvs.put(ctx, b"k", b"v")
            yield from kvs.delete(ctx, b"k")
            return (yield from kvs.get(ctx, b"k"))

        assert run_process(env, work()) is None

    def test_get_missing(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")

        def work():
            return (yield from kvs.get(ctx, b"missing"))

        assert run_process(env, work()) is None

    def test_keys_distributed_across_instances(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(200):
                yield from kvs.put(ctx, key(i), value(i))

        run_process(env, work())
        per_instance = [
            a.counters.get("records_written") for a in kvs.adapters
        ]
        assert all(count > 0 for count in per_instance)
        assert sum(per_instance) == 200

    def test_put_async_with_callback(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")
        completions = []

        def work():
            for i in range(10):
                yield from kvs.put_async(
                    ctx, key(i), value(i), callback=completions.append
                )
            # async: returns before completion; run() drains the workers

        run_process(env, work())
        env.sim.run()
        assert len(completions) == 10


class TestOBM:
    def test_obm_merges_concurrent_writes(self, env):
        kvs = open_p2kvs(env, n_workers=2)
        procs = []

        def writer(tid):
            ctx = env.cpu.new_thread("u%d" % tid)
            for i in range(50):
                yield from kvs.put(ctx, key(tid * 1000 + i), value(i))

        for t in range(8):
            procs.append(env.sim.spawn(writer(t)))
        env.sim.run()
        stats = kvs.obm_stats()
        assert stats["requests"] == 400
        assert stats["avg_batch"] > 1.2  # batching actually happened

    def test_obm_disabled_never_batches(self, env):
        kvs = open_p2kvs(env, n_workers=2, obm=False)

        def writer(tid):
            ctx = env.cpu.new_thread("u%d" % tid)
            for i in range(25):
                yield from kvs.put(ctx, key(tid * 1000 + i), value(i))

        for t in range(4):
            env.sim.spawn(writer(t))
        env.sim.run()
        stats = kvs.obm_stats()
        assert stats["avg_batch"] == 1.0

    def test_obm_cap_respected(self, env):
        kvs = open_p2kvs(env, n_workers=1, obm_cap=4)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(64):
                yield from kvs.put_async(ctx, key(i), value(i))

        run_process(env, work())
        env.sim.run()
        worker = kvs.workers[0]
        assert worker.batch_sizes.max <= 4

    def test_obm_does_not_merge_across_classes(self, env):
        """A GET between PUTs bounds the write batch (order preserved)."""
        kvs = open_p2kvs(env, n_workers=1)
        worker = kvs.workers[0]
        ctx = env.cpu.new_thread("u")
        results = []

        def work():
            # Enqueue PUT, PUT, GET, PUT without letting the worker drain.
            yield from kvs.put_async(ctx, b"a", b"1")
            yield from kvs.put_async(ctx, b"b", b"2")
            request_get = yield from self_get_async(kvs, ctx, b"a", results)
            yield from kvs.put_async(ctx, b"a", b"3")

        def self_get_async(kvs, ctx, k, sink):
            from repro.core.requests import OP_GET, Request

            request = Request(OP_GET, key=k, callback=sink.append)
            yield from kvs._submit_async(ctx, request, kvs.router.route(k))
            return request

        run_process(env, work())
        env.sim.run()
        # The GET must observe b"1" (submitted before the second PUT of "a").
        # Callbacks receive the uniform KVStatus.
        assert [status.value for status in results] == [b"1"]


class TestRangeQueries:
    def _load(self, env, kvs, n=200):
        ctx = env.cpu.new_thread("loader")

        def work():
            for i in range(n):
                yield from kvs.put(ctx, key(i), value(i))

        run_process(env, work())

    def test_range_query_merges_across_instances(self, env):
        kvs = open_p2kvs(env)
        self._load(env, kvs)
        ctx = env.cpu.new_thread("u")

        def work():
            return (yield from kvs.range_query(ctx, key(10), key(19)))

        pairs = run_process(env, work())
        assert pairs == [(key(i), value(i)) for i in range(10, 20)]

    def test_scan_parallel_strategy(self, env):
        kvs = open_p2kvs(env, scan_strategy="parallel")
        self._load(env, kvs)
        ctx = env.cpu.new_thread("u")

        def work():
            return (yield from kvs.scan(ctx, key(50), 20))

        pairs = run_process(env, work())
        assert pairs == [(key(i), value(i)) for i in range(50, 70)]

    def test_scan_serial_strategy(self, env):
        kvs = open_p2kvs(env, scan_strategy="serial")
        self._load(env, kvs)
        ctx = env.cpu.new_thread("u")

        def work():
            return (yield from kvs.scan(ctx, key(50), 20))

        pairs = run_process(env, work())
        assert pairs == [(key(i), value(i)) for i in range(50, 70)]

    def test_scan_beyond_data_returns_short(self, env):
        kvs = open_p2kvs(env)
        self._load(env, kvs, n=10)
        ctx = env.cpu.new_thread("u")

        def work():
            return (yield from kvs.scan(ctx, key(5), 100))

        pairs = run_process(env, work())
        assert pairs == [(key(i), value(i)) for i in range(5, 10)]


class TestLevelDBFlavor:
    def test_p2kvs_on_leveldb_adapter(self, env):
        kvs = open_p2kvs(env, adapter_open=adapter_factory("leveldb"))
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(50):
                yield from kvs.put(ctx, key(i), value(i))
            return (yield from kvs.get(ctx, key(25)))

        assert run_process(env, work()) == value(25)
