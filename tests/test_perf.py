"""Host-profiling plane tests: zone mechanics, the report tree, the stack
sampler's speedscope export, the instrument-tax harness, non-interference
(byte-identical sim reports with ``--profile`` on vs off, across reruns and
schedule seeds) and the zero-overhead off path.

Everything here touches *host* wall time, so the assertions are structural
(counts, nesting, monotonicity), never about absolute durations.
"""

import json
import textwrap

import pytest

from repro.analysis.lint import lint_source
from repro.perf import zones
from repro.perf.report import coverage, format_zone_tree, zone_tree
from repro.perf.sampling import StackSampler
from repro.perf.tax import LAYERS, format_tax
from repro.perf.zones import ZoneProfiler
from tests.test_flow import rule_names


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    """Every test starts and ends with the global probe disabled."""
    zones.uninstall()
    yield
    zones.uninstall()


# ---------------------------------------------------------------------------
# zone mechanics
# ---------------------------------------------------------------------------


def test_zone_enter_leave_accumulates():
    p = ZoneProfiler()
    p.start()
    p.enter("kernel.dispatch")
    p.leave()
    p.enter("kernel.dispatch")
    p.leave()
    p.stop()
    rec = p.zones["kernel.dispatch"]
    assert rec[0] == 2
    assert rec[1] >= rec[2] > 0
    snap = p.snapshot()
    assert snap["zones"]["kernel.dispatch"]["count"] == 2


def test_nested_zone_self_excludes_child():
    p = ZoneProfiler()
    p.start()
    p.enter("outer")
    p.enter("outer.inner")
    # burn a little host time inside the child so the split is visible
    sum(range(20000))
    p.leave()
    p.leave()
    p.stop()
    outer, inner = p.zones["outer"], p.zones["outer.inner"]
    # outer's total includes the child; its self time does not
    assert outer[1] >= inner[1]
    assert outer[2] == outer[1] - inner[1]
    # attributed = sum of self times = wall spent inside at least one zone
    assert p.attributed_ns == outer[2] + inner[2]
    assert p.attributed_ns <= p.wall_ns()


def test_reentrant_same_name_nests():
    p = ZoneProfiler()
    p.start()
    p.enter("z")
    p.enter("z")
    p.leave()
    p.leave()
    p.stop()
    rec = p.zones["z"]
    assert rec[0] == 2
    # self of both occurrences sums to the outer total (inner counted once)
    assert rec[2] == pytest.approx(rec[1] - (rec[1] - rec[2]))
    assert p.attributed_ns == rec[2]


def test_unwind_closes_to_token_depth():
    p = ZoneProfiler()
    p.start()
    tok = p.enter("dispatch")
    p.enter("a")
    p.enter("b")
    # simulate an exception tearing out of a callback: unwind, don't leave
    p.unwind(tok)
    assert p._stack == []
    assert set(p.zones) == {"dispatch", "a", "b"}
    p.stop()
    snap = p.snapshot()
    assert snap["coverage"] <= 1.0 + 1e-9
    assert snap["unattributed_ns"] >= 0


def test_snapshot_window_and_coverage_bounds():
    p = ZoneProfiler()
    snap = p.snapshot()
    assert snap == {
        "wall_ns": 0,
        "attributed_ns": 0,
        "unattributed_ns": 0,
        "coverage": 0.0,
        "zones": {},
    }
    p.start()
    p.enter("only")
    p.leave()
    p.stop()
    wall_after_stop = p.wall_ns()
    assert wall_after_stop == p.snapshot()["wall_ns"]  # window closed
    assert 0.0 < p.snapshot()["coverage"] <= 1.0


def test_install_uninstall_manage_global():
    assert zones.PROFILER is None
    prof = zones.install()
    assert zones.PROFILER is prof
    zones.uninstall()
    assert zones.PROFILER is None
    with zones.attach() as prof2:
        assert zones.PROFILER is prof2
        prof2.enter("x")
        prof2.leave()
    assert zones.PROFILER is None
    assert prof2.wall_ns() > 0


# ---------------------------------------------------------------------------
# report tree
# ---------------------------------------------------------------------------


def _fake_snapshot():
    # hand-built snapshot: 100us wall, 90 attributed across a 2-level tree
    zmap = {
        "engine.batch.encode": {"count": 3, "total_ns": 20000, "self_ns": 20000},
        "engine.compaction.merge": {"count": 1, "total_ns": 30000, "self_ns": 30000},
        "kernel.dispatch": {"count": 9, "total_ns": 90000, "self_ns": 40000},
    }
    attributed = sum(z["self_ns"] for z in zmap.values())
    return {
        "wall_ns": 100000,
        "attributed_ns": attributed,
        "unattributed_ns": 100000 - attributed,
        "coverage": attributed / 100000.0,
        "zones": zmap,
    }


def test_zone_tree_groups_by_prefix():
    tree = zone_tree(_fake_snapshot())
    assert tree["name"] == "attributed"
    assert tree["cum_ns"] == 90000
    children = {c["name"]: c for c in tree["children"]}
    assert set(children) == {"engine", "kernel"}
    engine = children["engine"]
    assert engine["cum_ns"] == 50000
    mid = {c["name"]: c for c in engine["children"]}
    assert set(mid) == {"engine.batch", "engine.compaction"}
    merge = mid["engine.compaction"]["children"][0]
    assert merge["name"] == "engine.compaction.merge"
    assert merge["cum_ns"] == 30000
    encode = mid["engine.batch"]["children"][0]
    assert encode["count"] == 3
    # children sorted by descending cumulative time
    assert [c["name"] for c in tree["children"]] == ["engine", "kernel"]


def test_format_zone_tree_mentions_unattributed():
    text = format_zone_tree(_fake_snapshot())
    assert "unattributed" in text
    assert "dispatch" in text  # nested nodes print their last segment
    assert "90.0%" in text  # the root line accounts for coverage
    assert coverage(_fake_snapshot()) == pytest.approx(0.9)


def test_format_zone_tree_min_share_prunes():
    text = format_zone_tree(_fake_snapshot(), min_share=0.25)
    assert "merge" in text
    assert "encode" not in text  # engine.batch subtree is 20% < 25%


# ---------------------------------------------------------------------------
# stack sampler / speedscope
# ---------------------------------------------------------------------------


def _burn(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def test_sampler_collapsed_and_speedscope():
    sampler = StackSampler(interval_us=50.0)
    sampler.start()
    for _ in range(200):
        _burn(2000)
    sampler.stop()
    collapsed = sampler.collapsed()
    assert collapsed, "expected at least one sampled stack"
    for line in collapsed.splitlines():
        frames, weight = line.rsplit(" ", 1)
        assert float(weight) > 0
        assert ";" in frames or frames
    assert any("_burn" in line for line in collapsed.splitlines())

    doc = sampler.speedscope("unit")
    # schema shape speedscope.app actually validates
    assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
    frames = doc["shared"]["frames"]
    prof = doc["profiles"][0]
    assert prof["type"] == "sampled"
    assert prof["unit"] == "nanoseconds"
    assert len(prof["samples"]) == len(prof["weights"]) > 0
    for stack in prof["samples"]:
        for idx in stack:
            assert 0 <= idx < len(frames)
    assert prof["endValue"] == sum(prof["weights"])
    json.dumps(doc)  # must be JSON-serializable as-is


def test_sampler_noop_when_never_started():
    sampler = StackSampler()
    assert sampler.collapsed() == ""
    doc = sampler.speedscope("empty")
    assert doc["profiles"][0]["samples"] == []


# ---------------------------------------------------------------------------
# instrument tax
# ---------------------------------------------------------------------------


def test_tax_layers_and_format():
    assert LAYERS[0] == "off"
    report = {
        "base_wall_ns": 10_000_000,
        "layers": [
            {"layer": "off", "wall_ns": 10_000_000, "overhead_pct": 0.0},
            {"layer": "trace", "wall_ns": 12_000_000, "overhead_pct": 20.0},
        ],
    }
    text = format_tax(report)
    assert "off" in text and "trace" in text
    assert "+20.0%" in text


def test_tax_unknown_layer_rejected():
    from repro.perf.tax import run_workload

    with pytest.raises(ValueError):
        run_workload("nosuch")


# ---------------------------------------------------------------------------
# non-interference: byte-identical sim output with --profile on/off
# ---------------------------------------------------------------------------


def _dbbench_json(tmp_path, tag, extra=()):
    from repro.tools import dbbench

    out = tmp_path / ("bench-%s.json" % tag)
    argv = [
        "--benchmarks", "fillrandom", "--system", "p2kvs",
        "--workers", "2", "--threads", "4", "--num", "300",
        "--cores", "8", "--device", "nvme", "--seed", "0",
        "--json", str(out),
    ] + list(extra)
    assert dbbench.main(argv) == 0
    return out.read_bytes()


def test_dbbench_profile_does_not_change_report(tmp_path, capsys):
    plain = _dbbench_json(tmp_path, "plain")
    profiled = _dbbench_json(tmp_path, "prof", ["--profile"])
    again = _dbbench_json(tmp_path, "prof2", ["--profile"])
    assert profiled == plain
    assert again == plain
    # ...and under schedule perturbation: profiled-vs-plain at the same seed
    seeded_plain = _dbbench_json(tmp_path, "s7", ["--schedule-seed", "7"])
    seeded_prof = _dbbench_json(
        tmp_path, "s7p", ["--profile", "--schedule-seed", "7"]
    )
    assert seeded_prof == seeded_plain
    assert zones.PROFILER is None  # CLI uninstalls its profiler


def test_dbbench_profile_out_writes_snapshot(tmp_path, capsys):
    out = tmp_path / "prof.json"
    _dbbench_json(tmp_path, "artifact", ["--profile-out", str(out)])
    snap = json.loads(out.read_text())
    assert 0.0 < snap["coverage"] <= 1.0
    assert "kernel.dispatch" in snap["zones"]
    # the profile tree goes to stderr: sim stdout must not mention it
    captured = capsys.readouterr()
    assert "attributed" not in captured.out
    assert "dispatch" in captured.err


def _serve_json(tmp_path, tag, extra=()):
    from repro.tools import serve

    out = tmp_path / ("slo-%s.json" % tag)
    argv = [
        "--scenario", "uniform", "--shards", "4", "--partitions", "8",
        "--ops", "200", "--rate", "600000", "--key-space", "200",
        "--dispatchers", "2", "--workers", "2", "--cores", "16",
        "--json", str(out),
    ] + list(extra)
    assert serve.main(argv) == 0
    return out.read_bytes()


def test_serve_profile_does_not_change_report(tmp_path, capsys):
    plain = _serve_json(tmp_path, "plain")
    profiled = _serve_json(tmp_path, "prof", ["--profile"])
    assert profiled == plain
    # the service plane's SLO report is byte-stable across schedule seeds,
    # so the profiled seeded run must match the unseeded plain bytes too
    seeded = _serve_json(
        tmp_path, "seed", ["--profile", "--schedule-seed", "99"]
    )
    assert seeded == plain


def test_disabled_probes_never_touch_the_profiler(monkeypatch):
    """With no profiler installed the probes must be dead code: poison every
    ZoneProfiler method and run a full benchmark."""
    from repro.tools import dbbench

    def _boom(*a, **k):  # pragma: no cover - must never run
        raise AssertionError("probe fired with PROFILER unset")

    monkeypatch.setattr(ZoneProfiler, "enter", _boom)
    monkeypatch.setattr(ZoneProfiler, "leave", _boom)
    monkeypatch.setattr(ZoneProfiler, "unwind", _boom)
    assert zones.PROFILER is None
    args = dbbench.build_parser().parse_args(
        ["--benchmarks", "fillrandom", "--system", "p2kvs", "--workers", "2",
         "--threads", "4", "--num", "200", "--cores", "8", "--seed", "0"]
    )
    result = dbbench.run_benchmark("fillrandom", args)
    assert result["ops"] == 200


# ---------------------------------------------------------------------------
# lint / flow integration: the repro.perf allowlist and host-time-leak
# ---------------------------------------------------------------------------


def test_wall_clock_rule_exempts_repro_perf_only():
    code = textwrap.dedent(
        """
        from time import perf_counter_ns

        def wall():
            return perf_counter_ns()
        """
    )
    inside = lint_source(code, module="repro.perf.zones")
    assert [d.rule for d in inside] == []
    outside = lint_source(code, module="repro.engine.db")
    assert "wall-clock" in [d.rule for d in outside]
    # bare-name calls are caught even outside the classic sim scopes
    tools = lint_source(code, module="repro.tools.newtool")
    assert "wall-clock" in [d.rule for d in tools]


def test_host_time_leak_flagged():
    names = rule_names(
        repro__perf__zones="""
        def wall_ns():
            return 123
        """,
        repro__engine__perffix="""
        from repro.perf.zones import wall_ns

        def pace(self, env, ctx):
            budget = wall_ns()
            yield env.sim.timeout(budget)
        """,
    )
    assert names == ["host-time-leak"]


# ---------------------------------------------------------------------------
# bench-regress wall-clock gate
# ---------------------------------------------------------------------------


def _bench_entry(qps=1000.0, wall=5000.0):
    return {
        "qps": qps,
        "p99_latency_us": 10.0,
        "simulated_seconds": 1.0,
        "wall_seconds": 1.0,
        "wall_ops_per_s": wall,
        "counters": {},
        "events": {},
    }


def _meta():
    import platform

    return {"python": platform.python_version(),
            "platform": platform.platform(),
            "wall_protocol": "best-of-3 after 1 warmup"}


def test_regress_gates_wall_column():
    from benchmarks.regress import compare

    baseline = {"_meta": _meta(), "fill": _bench_entry()}
    ok = {"_meta": _meta(), "fill": _bench_entry(wall=4000.0)}
    assert compare(ok, baseline, 0.10, wall_tolerance=0.30) == []
    slow = {"_meta": _meta(), "fill": _bench_entry(wall=3000.0)}
    failures = compare(slow, baseline, 0.10, wall_tolerance=0.30)
    assert len(failures) == 1 and "wall throughput" in failures[0]
    # a missing wall column (e.g. the zero-wall guard fired) also fails
    missing = {"_meta": _meta(), "fill": _bench_entry(wall=None)}
    failures = compare(missing, baseline, 0.10, wall_tolerance=0.30)
    assert len(failures) == 1 and "missing" in failures[0]


def test_regress_wall_gate_skipped_on_foreign_host(capsys):
    from benchmarks.regress import compare

    foreign = dict(_meta(), platform="OtherOS-1.0-sparc64")
    baseline = {"_meta": foreign, "fill": _bench_entry()}
    current = {"_meta": _meta(), "fill": _bench_entry(wall=100.0)}
    # host speed is not portable: qps still gated, wall only reported
    assert compare(current, baseline, 0.10, wall_tolerance=0.30) == []
    assert "not gated" in capsys.readouterr().out


def test_regress_meta_is_not_a_config():
    from benchmarks.regress import compare

    baseline = {"_meta": _meta(), "fill": _bench_entry()}
    current = {"fill": _bench_entry()}
    assert compare(current, baseline, 0.10, wall_tolerance=0.30) == []


def test_host_time_leak_negative_outside_sinks():
    # reading a snapshot for reporting is fine; only sim sinks are errors
    names = rule_names(
        repro__perf__zones="""
        def wall_ns():
            return 123
        """,
        repro__engine__perfok="""
        from repro.perf.zones import wall_ns

        def report(self):
            return {"wall": wall_ns()}
        """,
    )
    assert names == []
