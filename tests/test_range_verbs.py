"""RANGE support across every system under test, via the harness verb."""

import pytest

from repro.baselines import KVellLike
from repro.harness import (
    KVellSystem,
    MultiInstanceSystem,
    P2KVSSystem,
    SingleInstanceSystem,
    WiredTigerSystem,
    open_system,
    preload,
    run_closed_loop,
    scaled_options,
)
from repro.workloads import fillrandom, make_key
from tests.conftest import run_process

N_KEYS = 200


def build(env, kind):
    if kind == "single":
        return open_system(env, SingleInstanceSystem.open(env, scaled_options()))
    if kind == "multi":
        return open_system(env, MultiInstanceSystem.open(env, 2, scaled_options))
    if kind == "p2kvs":
        return open_system(env, P2KVSSystem.open(env, n_workers=2))
    if kind == "kvell":
        return open_system(env, KVellSystem.open(env, n_workers=2))
    return open_system(env, WiredTigerSystem.open(env))


@pytest.mark.parametrize("kind", ["single", "p2kvs", "kvell", "wiredtiger"])
def test_range_verb_returns_bounded_sorted_pairs(env, kind):
    system = build(env, kind)
    preload(env, system, fillrandom(N_KEYS), n_threads=2)
    ops = [("range", make_key(50), make_key(59))]
    metrics = run_closed_loop(env, system, [ops])
    assert metrics.n_ops == 1
    assert metrics.latency_of("scan").count == 1


def test_kvell_range_query_contents(env):
    kvell = KVellLike(env, n_workers=3)
    ctx = env.cpu.new_thread("u")

    def work():
        for i in range(60):
            yield from kvell.put(ctx, make_key(i), b"v%d" % i)
        return (yield from kvell.range_query(ctx, make_key(10), make_key(14)))

    pairs = run_process(env, work())
    assert pairs == [(make_key(i), b"v%d" % i) for i in range(10, 15)]


def test_multi_instance_range_uses_thread_local_engine(env):
    system = build(env, "multi")
    preload(env, system, fillrandom(N_KEYS), n_threads=2)
    # Each thread only sees its own instance's keys — the paper's
    # multi-instance practice has no global range semantics.
    ops = [("range", make_key(0), make_key(199))]
    metrics = run_closed_loop(env, system, [ops])
    assert metrics.n_ops == 1
