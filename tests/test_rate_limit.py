"""Tests for the SILK-style compaction rate limiter."""

import pytest

from repro.engine import LSMEngine, rocksdb_options
from tests.conftest import run_process


def key(i):
    return b"user%08d" % i


SHAPE = dict(
    write_buffer_size=2048,
    target_file_size=2048,
    max_bytes_for_level_base=8192,
    l0_compaction_trigger=2,
)


def run_load(env, limit):
    options = rocksdb_options(compaction_rate_limit=limit, **SHAPE)
    engine = run_process(env, LSMEngine.open(env, "db", options))
    ctx = env.cpu.new_thread("u")

    def work():
        for i in range(3000):
            yield from engine.put(ctx, key(i), b"v" * 100)

    run_process(env, work())
    # Closed loop: writers drain before run_process returns, so sim time is
    # the workload window (no post-window drain skews the rate).
    compaction_writes = env.device.bytes_by_kind.get("write:compaction")
    return engine, compaction_writes / env.sim.now


class TestRateLimit:
    def test_cap_bounds_sustained_compaction_rate(self, env):
        limit = 20 * 1024 * 1024  # 20 MB/s
        engine, rate = run_load(env, limit)
        assert engine.counters.get("compactions") > 0
        assert rate <= limit * 1.25  # pacing granularity slack

    def test_unthrottled_runs_much_faster_than_a_tight_cap(self):
        from repro.engine.env import make_env

        env_free = make_env(n_cores=8)
        _, rate_free = run_load(env_free, None)
        env_tight = make_env(n_cores=8)
        _, rate_tight = run_load(env_tight, 10 * 1024 * 1024)
        assert rate_free > rate_tight

    def test_data_correct_under_throttling(self, env):
        options = rocksdb_options(
            compaction_rate_limit=10 * 1024 * 1024, **SHAPE
        )
        engine = run_process(env, LSMEngine.open(env, "db", options))
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(1200):
                yield from engine.put(ctx, key(i % 400), b"v%d" % i)
            out = []
            for i in (0, 200, 399):
                out.append((yield from engine.get(ctx, key(i))))
            return out

        assert run_process(env, work()) == [b"v800", b"v1000", b"v1199"]

    def test_default_is_unthrottled(self, env):
        engine = run_process(env, LSMEngine.open(env, "db", rocksdb_options()))
        assert engine.options.compaction_rate_limit is None
