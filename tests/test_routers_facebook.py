"""Tests for the PrefixRouter and the Facebook mixed-size workload."""

import pytest

from repro.core import P2KVS, PrefixRouter
from repro.engine import make_env
from repro.workloads import FacebookValueSizes, facebook_mixed_workload, make_key
from tests.conftest import run_process


class TestPrefixRouter:
    def test_routes_known_columns(self):
        router = PrefixRouter({b"users": 0, b"posts": 1}, n_workers=4)
        assert router.route(b"users:42") == 0
        assert router.route(b"posts:7") == 1

    def test_unknown_prefix_falls_back_to_spare_workers(self):
        router = PrefixRouter({b"users": 0, b"posts": 1}, n_workers=4)
        for key in (b"misc:1", b"misc:2", b"noseparator"):
            assert router.route(key) in (2, 3)

    def test_fallback_is_deterministic(self):
        router = PrefixRouter({b"a": 0}, n_workers=3)
        assert router.route(b"x:1") == router.route(b"x:1")

    def test_all_workers_mapped_fallback_uses_all(self):
        router = PrefixRouter({b"a": 0, b"b": 1}, n_workers=2)
        assert router.route(b"other:9") in (0, 1)

    def test_column_of(self):
        router = PrefixRouter({b"a": 0}, n_workers=2)
        assert router.column_of(b"users:42") == b"users"
        assert router.column_of(b"plainkey") == b""

    def test_rejects_bad_mapping(self):
        with pytest.raises(ValueError):
            PrefixRouter({}, n_workers=2)
        with pytest.raises(ValueError):
            PrefixRouter({b"a": 5}, n_workers=2)

    def test_histogram(self):
        router = PrefixRouter({b"hot": 0}, n_workers=3)
        counts = router.histogram([b"hot:%d" % i for i in range(10)])
        assert counts[0] == 10

    def test_p2kvs_with_prefix_router_end_to_end(self, env):
        router = PrefixRouter({b"users": 0, b"posts": 1}, n_workers=3)
        kvs = run_process(env, P2KVS.open(env, n_workers=3, router=router))
        ctx = env.cpu.new_thread("u")

        def work():
            yield from kvs.put(ctx, b"users:1", b"alice")
            yield from kvs.put(ctx, b"posts:1", b"hello")
            yield from kvs.put(ctx, b"misc:1", b"other")
            a = yield from kvs.get(ctx, b"users:1")
            b = yield from kvs.get(ctx, b"posts:1")
            c = yield from kvs.get(ctx, b"misc:1")
            return a, b, c

        assert run_process(env, work()) == (b"alice", b"hello", b"other")
        # Column traffic landed on the mapped workers.
        assert kvs.workers[0].counters.get("requests") >= 2  # users put+get
        assert kvs.workers[1].counters.get("requests") >= 2  # posts put+get


class TestFacebookWorkload:
    def test_size_distribution_matches_citation(self):
        """Cao et al.: ~90% of KVs under 1 KB, mean value size small."""
        sizes = FacebookValueSizes(seed=1)
        assert sizes.fraction_below(1024) >= 0.85
        samples = [sizes.sample() for _ in range(20000)]
        mean = sum(samples) / len(samples)
        assert mean < 600  # small-dominated

    def test_sampler_deterministic_per_seed(self):
        a = FacebookValueSizes(seed=3)
        b = FacebookValueSizes(seed=3)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            FacebookValueSizes(buckets=[(0.5, 1, 10)])

    def test_workload_mix_ratios(self):
        import collections

        verbs = collections.Counter(
            v for v, _, _ in facebook_mixed_workload(5000, key_space=1000, seed=2)
        )
        assert 0.7 < verbs["read"] / 5000 < 0.86
        assert 0.12 < verbs["update"] / 5000 < 0.26
        assert verbs["scan"] > 0

    def test_rejects_bad_ratios(self):
        with pytest.raises(ValueError):
            list(facebook_mixed_workload(10, 100, get_ratio=0.9, put_ratio=0.2))

    def test_runs_through_harness(self, env):
        from repro.harness import SingleInstanceSystem, open_system, preload, run_closed_loop, scaled_options
        from repro.workloads import fillrandom, split_stream

        system = open_system(
            env, SingleInstanceSystem.open(env, scaled_options())
        )
        preload(env, system, fillrandom(500), n_threads=2)
        ops = list(facebook_mixed_workload(300, key_space=500, seed=4))
        metrics = run_closed_loop(env, system, split_stream(ops, 2))
        assert metrics.n_ops == 300
        assert metrics.qps > 0
