"""Dynamic sanitizer tests: lock-order cycles, data races, happens-before
edges, and the kernel's exit-holding-lock guard."""

import pytest

from repro.analysis.sanitizer import Sanitizer, SanitizerError, install_sanitizer
from repro.sim.core import SimError, Simulator
from repro.sim.queues import FIFOQueue
from repro.sim.sync import Condition, Lock


def _sanitized_sim():
    sim = Simulator()
    return sim, Sanitizer().attach(sim)


# ---------------------------------------------------------------------------
# lock-order graph
# ---------------------------------------------------------------------------


@pytest.mark.no_sanitize
def test_lock_order_cycle_detected():
    """A→B in one process and B→A in another is a potential deadlock even
    when the runs never actually overlap."""
    sim, san = _sanitized_sim()
    a = Lock(sim, "lock-a")
    b = Lock(sim, "lock-b")

    def forward():
        yield a.acquire()
        yield b.acquire()
        b.release()
        a.release()

    def backward():
        yield sim.timeout(1.0)  # no overlap: this is *potential*, not actual
        yield b.acquire()
        yield a.acquire()
        a.release()
        b.release()

    sim.spawn(forward(), "forward")
    sim.spawn(backward(), "backward")
    sim.run()

    assert len(san.deadlock_reports) == 1
    report = san.deadlock_reports[0]
    assert report["kind"] == "lock-order-cycle"
    assert report["process"] == "backward"
    names = {name for pair in report["cycle"] for name in pair}
    assert names == {"lock-a", "lock-b"}
    # Both edges carry an acquisition stack.
    assert len(report["stacks"]) == 2
    assert all(stack for stack in report["stacks"].values())
    text = san.format_report()
    assert "POTENTIAL DEADLOCK" in text
    with pytest.raises(SanitizerError):
        san.check()


@pytest.mark.no_sanitize
def test_recursive_acquire_is_a_cycle():
    sim, san = _sanitized_sim()
    lock = Lock(sim, "rec")

    def proc():
        yield lock.acquire()
        lock.acquire()  # would self-deadlock if anyone else held it
        lock.release()
        lock.release()

    sim.spawn(proc(), "rec-proc")
    sim.run()
    assert len(san.deadlock_reports) == 1
    assert san.deadlock_reports[0]["cycle"] == [("rec", "rec")]


def test_consistent_lock_order_is_clean():
    sim, san = _sanitized_sim()
    a = Lock(sim, "lock-a")
    b = Lock(sim, "lock-b")

    def proc(delay):
        yield sim.timeout(delay)
        yield a.acquire()
        yield b.acquire()
        b.release()
        a.release()

    sim.spawn(proc(0.0), "p0")
    sim.spawn(proc(0.5), "p1")
    sim.run()
    assert san.findings == []
    san.check()  # does not raise
    assert san.format_report() == "sanitizer: no findings"


@pytest.mark.no_sanitize
def test_duplicate_cycles_reported_once():
    sim, san = _sanitized_sim()
    a = Lock(sim, "lock-a")
    b = Lock(sim, "lock-b")

    def forward(delay):
        yield sim.timeout(delay)
        yield a.acquire()
        yield b.acquire()
        b.release()
        a.release()

    def backward(delay):
        yield sim.timeout(delay)
        yield b.acquire()
        yield a.acquire()
        a.release()
        b.release()

    for i in range(3):
        sim.spawn(forward(2.0 * i), "f%d" % i)
        sim.spawn(backward(2.0 * i + 1.0), "b%d" % i)
    sim.run()
    assert len(san.deadlock_reports) == 1


# ---------------------------------------------------------------------------
# data races / happens-before
# ---------------------------------------------------------------------------


def _touch(sim, key, write=True, site="test"):
    monitor = sim.monitor
    if monitor is not None:
        monitor.on_access(key, write=write, site=site)


@pytest.mark.no_sanitize
def test_unsynchronized_writes_race():
    sim, san = _sanitized_sim()

    def writer(name):
        yield sim.timeout(1.0)
        _touch(sim, "shared")

    sim.spawn(writer("w1"), "w1")
    sim.spawn(writer("w2"), "w2")
    sim.run()
    assert len(san.race_reports) == 1
    report = san.race_reports[0]
    assert report["object"] == "shared"
    assert {report["first"]["process"], report["second"]["process"]} == {"w1", "w2"}
    assert "DATA RACE" in san.format_report()


@pytest.mark.no_sanitize
def test_write_read_race():
    sim, san = _sanitized_sim()

    def writer():
        yield sim.timeout(1.0)
        _touch(sim, "shared", write=True)

    def reader():
        yield sim.timeout(2.0)
        _touch(sim, "shared", write=False)

    sim.spawn(writer(), "writer")
    sim.spawn(reader(), "reader")
    sim.run()
    assert len(san.race_reports) == 1
    assert san.race_reports[0]["second_is_write"] is False


def test_lock_protected_accesses_are_ordered():
    sim, san = _sanitized_sim()
    lock = Lock(sim, "guard")

    def proc(name):
        yield sim.timeout(1.0)
        yield lock.acquire()
        _touch(sim, "shared")
        lock.release()

    sim.spawn(proc("p1"), "p1")
    sim.spawn(proc("p2"), "p2")
    sim.run()
    assert san.findings == []


def test_event_handoff_orders_accesses():
    sim, san = _sanitized_sim()
    done = sim.event()

    def producer():
        yield sim.timeout(1.0)
        _touch(sim, "shared")
        done.succeed()

    def consumer():
        yield done
        _touch(sim, "shared")

    sim.spawn(producer(), "producer")
    sim.spawn(consumer(), "consumer")
    sim.run()
    assert san.findings == []


def test_queue_handoff_orders_accesses():
    sim, san = _sanitized_sim()
    queue = FIFOQueue(sim, "work")

    def producer():
        yield sim.timeout(1.0)
        _touch(sim, "shared")
        queue.put("item")

    def consumer():
        yield queue.get()
        _touch(sim, "shared")

    sim.spawn(consumer(), "consumer")
    sim.spawn(producer(), "producer")
    sim.run()
    assert san.findings == []


def test_spawn_orders_parent_before_child():
    sim, san = _sanitized_sim()

    def child():
        yield sim.timeout(0.1)
        _touch(sim, "shared")

    def parent():
        yield sim.timeout(1.0)
        _touch(sim, "shared")
        sim.spawn(child(), "child")

    sim.spawn(parent(), "parent")
    sim.run()
    assert san.findings == []


@pytest.mark.no_sanitize
def test_obm_second_consumer_races_on_queue_head():
    """peek/try_pop are single-consumer accessors: a second unsynchronized
    consumer is exactly the OBM discipline violation the probe encodes."""
    sim, san = _sanitized_sim()
    queue = FIFOQueue(sim, "requests")
    for i in range(4):
        queue.put(i)

    def consumer(delay):
        yield sim.timeout(delay)
        queue.peek()
        queue.try_pop()

    sim.spawn(consumer(1.0), "c1")
    sim.spawn(consumer(2.0), "c2")
    sim.run()
    assert len(san.race_reports) >= 1
    assert san.race_reports[0]["object"].startswith("queue:requests")


def test_install_sanitizer_resolves_env(env):
    san = install_sanitizer(env)
    assert env.sim.monitor is san
    assert san.sim is env.sim


# ---------------------------------------------------------------------------
# kernel guard: a process may not exit holding a lock
# ---------------------------------------------------------------------------


def test_exit_holding_lock_is_a_simerror():
    sim = Simulator()
    lock = Lock(sim, "leaked")

    def bad():
        yield lock.acquire()
        # returns without releasing

    sim.spawn(bad(), "bad-proc")
    with pytest.raises(SimError, match="exited while holding lock"):
        sim.run()


def test_exit_holding_lock_names_the_lock_and_process():
    sim = Simulator()
    lock = Lock(sim, "wal-mutex")

    def bad():
        yield lock.acquire()

    sim.spawn(bad(), "leaker")
    with pytest.raises(SimError, match=r"'leaker'.*'wal-mutex'"):
        sim.run()


def test_clean_release_does_not_trip_guard():
    sim = Simulator()
    lock = Lock(sim, "ok")

    def good():
        yield lock.acquire()
        lock.release()

    sim.spawn(good(), "good")
    sim.run()  # no error


# ---------------------------------------------------------------------------
# condvar wakeup order (audit regression, see sim/sync.py)
# ---------------------------------------------------------------------------


def test_condition_wakes_waiters_in_fifo_order():
    sim = Simulator()
    cond = Condition(sim, "c")
    order = []

    def waiter(i):
        yield sim.timeout(0.1 * i)  # arrival order 0, 1, 2, 3, 4
        yield cond.wait()
        order.append(i)

    for i in range(5):
        sim.spawn(waiter(i), "w%d" % i)

    def notifier():
        yield sim.timeout(1.0)
        cond.notify(2)
        yield sim.timeout(1.0)
        cond.notify_all()

    sim.spawn(notifier(), "notifier")
    sim.run()
    assert order == [0, 1, 2, 3, 4]
