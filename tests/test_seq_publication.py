"""Tests for the sequence-publication protocol (RocksDB's last_sequence).

Sequences are *allocated* at write-group formation but *published* only
after the whole group's memtable inserts complete, in allocation order.
Without this, a snapshot could observe half of a WriteBatch (the bug these
tests originally caught)."""

import pytest

from repro.engine import LSMEngine, WriteBatch, rocksdb_options
from repro.engine.env import make_env
from tests.conftest import run_process


def open_engine(env, **overrides):
    return run_process(
        env, LSMEngine.open(env, "db", rocksdb_options(**overrides))
    )


class TestPublication:
    def test_visible_tracks_seq_when_quiescent(self, env):
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(10):
                yield from engine.put(ctx, b"k%d" % i, b"v")

        run_process(env, work())
        assert engine.visible_seq == engine.seq == 10

    def test_publish_out_of_order_waits_for_gap(self, env):
        engine = open_engine(env)
        engine.seq = 10
        engine.publish_seqs(4, 6)  # group 2 finished first
        assert engine.visible_seq == 0
        engine.publish_seqs(1, 3)  # group 1 fills the gap
        assert engine.visible_seq == 6
        engine.publish_seqs(7, 10)
        assert engine.visible_seq == 10

    def test_empty_range_is_noop(self, env):
        engine = open_engine(env)
        engine.publish_seqs(5, 4)
        assert engine.visible_seq == 0

    def test_read_your_own_write(self, env):
        """A writer must see its own write immediately after put returns."""
        env2 = make_env(n_cores=8)
        engine = open_engine(env2)
        failures = []

        def worker(tid):
            ctx = env2.cpu.new_thread("w%d" % tid)
            for i in range(40):
                key = b"t%d-%d" % (tid, i)
                yield from engine.put(ctx, key, b"mine")
                got = yield from engine.get(ctx, key)
                if got != b"mine":
                    failures.append(key)

        for tid in range(6):
            env2.sim.spawn(worker(tid))
        env2.sim.run()
        assert failures == []

    def test_snapshot_never_splits_a_batch(self, env):
        """Heavily interleaved snapshot reads against two-key batches."""
        env2 = make_env(n_cores=8)
        engine = open_engine(env2)
        wctx = env2.cpu.new_thread("w")
        rctx = env2.cpu.new_thread("r")
        anomalies = []

        def writer():
            for version in range(80):
                stamp = b"%06d" % version
                batch = WriteBatch().put(b"x", stamp).put(b"y", stamp)
                yield from engine.write(wctx, batch)

        def reader():
            for _ in range(80):
                snap = engine.snapshot()
                x = yield from engine.get(rctx, b"x", snapshot_seq=snap)
                y = yield from engine.get(rctx, b"y", snapshot_seq=snap)
                engine.release_snapshot(snap)
                if x != y:
                    anomalies.append((snap, x, y))
                yield env2.sim.timeout(0.7e-6)

        env2.sim.spawn(writer())
        env2.sim.spawn(reader())
        env2.sim.run()
        assert anomalies == []

    def test_default_reads_use_published_sequence(self, env):
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            yield from engine.put(ctx, b"k", b"v")

        run_process(env, work())
        # Simulate an allocated-but-unpublished in-flight batch shadowing k.
        seqs = engine.allocate_seqs(1)
        engine.memtable.add(seqs[0], 1, b"k", b"IN-FLIGHT")

        def read():
            return (yield from engine.get(ctx, b"k"))

        # Default read must not observe the unpublished entry.
        assert run_process(env, read()) == b"v"
        engine.publish_seqs(seqs[0], seqs[-1])

        def read_again():
            return (yield from engine.get(ctx, b"k"))

        assert run_process(env, read_again()) == b"IN-FLIGHT"

    def test_recovery_publishes_everything_replayed(self, env):
        engine = open_engine(env)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(20):
                yield from engine.put(ctx, b"k%d" % i, b"v")
            yield from engine.close()

        run_process(env, work())
        env.disk.crash()
        engine2 = open_engine(env)
        assert engine2.visible_seq == engine2.seq >= 20

    def test_seq_resumes_above_surviving_ssts(self, env):
        """New post-recovery writes must shadow recovered SST versions."""
        engine = open_engine(env, write_buffer_size=1024)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(200):
                yield from engine.put(ctx, b"key%04d" % i, b"old")
            yield from engine.flush(ctx)

        run_process(env, work())
        env.disk.crash()
        engine2 = open_engine(env, write_buffer_size=1024)
        ctx2 = env.cpu.new_thread("u2")

        def overwrite_and_read():
            yield from engine2.put(ctx2, b"key0000", b"new")
            return (yield from engine2.get(ctx2, b"key0000"))

        assert run_process(env, overwrite_and_read()) == b"new"
