"""Tests for the sharded service plane (repro.service + repro.tools.serve).

Covers the properties docs/SERVICE.md promises: partition-function
stability, directory move semantics, arrival-schedule determinism, the
shed-versus-goodput accounting identities, migration read-back
correctness, and byte-identical SLO reports across reruns and under
``--schedule-seed`` perturbation.
"""

import json

import pytest

from repro.engine import make_env
from repro.service import (
    DiurnalArrivals,
    HashPartitioner,
    PartitionDirectory,
    PoissonArrivals,
    RangePartitioner,
    ServicePlane,
    ServiceRouter,
    build_scenario,
    build_slo_report,
    preload_plane,
    run_service_load,
    uniform_boundaries,
)
from repro.tools import serve
from repro.workloads.keygen import make_key, make_value
from tests.conftest import run_process


class TestHashPartitioner:
    def test_pinned_values(self):
        # The partition function is part of the on-disk/placement contract:
        # these exact values must never drift across refactors.
        p32 = HashPartitioner(32)
        assert [p32.partition(make_key(i)) for i in (0, 1, 7, 123, 799)] == [
            18, 5, 19, 2, 21,
        ]
        p8 = HashPartitioner(8)
        assert [p8.partition(make_key(i)) for i in (0, 1, 7, 123, 799)] == [
            2, 5, 3, 2, 5,
        ]

    def test_stable_across_instances(self):
        a, b = HashPartitioner(16), HashPartitioner(16)
        for i in range(200):
            assert a.partition(make_key(i)) == b.partition(make_key(i))

    def test_histogram_counts_every_key(self):
        p = HashPartitioner(8)
        keys = [make_key(i) for i in range(100)]
        hist = p.histogram(keys)
        assert sum(hist) == 100
        assert len(hist) == 8

    def test_explain_matches_partition(self):
        p = HashPartitioner(32)
        info = p.explain(make_key(42))
        assert info["partition"] == p.partition(make_key(42))

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_bisect_placement(self):
        p = RangePartitioner([b"b", b"d"])
        assert p.n_partitions == 3
        assert p.partition(b"a") == 0
        assert p.partition(b"b") == 1  # boundary key goes right
        assert p.partition(b"c") == 1
        assert p.partition(b"z") == 2

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            RangePartitioner([b"d", b"b"])

    def test_uniform_boundaries_cover_key_space(self):
        bounds = uniform_boundaries(800, 8)
        p = RangePartitioner(bounds)
        hist = p.histogram(make_key(i) for i in range(800))
        assert sum(hist) == 800
        # Evenly spaced boundaries over a dense id space: every partition
        # gets its 1/8th share.
        assert hist == [100] * 8

    def test_preserves_adjacency(self):
        p = RangePartitioner(uniform_boundaries(800, 8))
        parts = [p.partition(make_key(i)) for i in range(800)]
        assert parts == sorted(parts)


class TestPartitionDirectory:
    def test_round_robin_start(self):
        d = PartitionDirectory(8, 3)
        assert [d.shard_of(p) for p in range(8)] == [0, 1, 2, 0, 1, 2, 0, 1]
        assert d.partitions_on(0) == [0, 3, 6]

    def test_move_bumps_version_and_audits(self):
        d = PartitionDirectory(8, 2)
        assert d.version == 0
        source = d.move_partition(0, 1)
        assert source == 0
        assert d.shard_of(0) == 1
        assert d.version == 1
        assert d.moves == [(1, 0, 0, 1)]

    def test_move_validation(self):
        d = PartitionDirectory(8, 2)
        with pytest.raises(ValueError):
            d.move_partition(8, 1)  # partition out of range
        with pytest.raises(ValueError):
            d.move_partition(0, 2)  # shard out of range
        with pytest.raises(ValueError):
            d.move_partition(1, 1)  # already there

    def test_snapshot_round_trips_the_move_log(self):
        d = PartitionDirectory(8, 2)
        d.move_partition(0, 1)
        snap = d.snapshot()
        assert snap["version"] == 1
        assert snap["partitions_per_shard"] == [3, 5]
        assert snap["moves"][0] == {
            "version": 1, "partition": 0, "from_shard": 0, "to_shard": 1,
        }

    def test_needs_a_partition_per_shard(self):
        with pytest.raises(ValueError):
            PartitionDirectory(2, 4)


class TestServiceRouter:
    def test_route_follows_directory(self):
        partitioner = HashPartitioner(8)
        directory = PartitionDirectory(8, 2)
        router = ServiceRouter(partitioner, directory)
        key = make_key(7)
        partition, shard = router.route(key)
        assert partition == partitioner.partition(key)
        assert shard == directory.shard_of(partition)
        directory.move_partition(partition, 1 - shard)
        assert router.route(key) == (partition, 1 - shard)

    def test_rejects_partition_count_mismatch(self):
        with pytest.raises(ValueError):
            ServiceRouter(HashPartitioner(8), PartitionDirectory(16, 2))


class TestArrivals:
    def test_poisson_schedule_is_deterministic(self):
        a = list(PoissonArrivals(1e6, seed=7).times(500))
        b = list(PoissonArrivals(1e6, seed=7).times(500))
        assert a == b
        assert list(PoissonArrivals(1e6, seed=8).times(500)) != a

    def test_poisson_times_strictly_increase(self):
        times = list(PoissonArrivals(1e6, seed=7).times(500))
        assert len(times) == 500
        assert all(t1 > t0 for t0, t1 in zip(times, times[1:]))
        # Mean gap within 20% of 1/rate over 500 draws.
        assert times[-1] / 500 == pytest.approx(1e-6, rel=0.2)

    def test_diurnal_rate_swings_between_trough_and_peak(self):
        d = DiurnalArrivals(1e6, period=1.0, trough_fraction=0.2, seed=7)
        assert d.rate_at(0.0) == pytest.approx(0.2e6)
        assert d.rate_at(0.5) == pytest.approx(1e6)
        assert d.rate_at(1.0) == pytest.approx(0.2e6)

    def test_diurnal_schedule_is_deterministic(self):
        d = DiurnalArrivals(1e6, period=1e-3, seed=7)
        a = list(d.times(300))
        assert a == list(d.times(300))
        assert all(t1 > t0 for t0, t1 in zip(a, a[1:]))

    def test_diurnal_clusters_at_the_peak(self):
        d = DiurnalArrivals(1e6, period=1e-3, trough_fraction=0.05, seed=7)
        times = [t % 1e-3 for t in d.times(400)]
        near_peak = sum(1 for t in times if 0.25e-3 < t < 0.75e-3)
        assert near_peak > 300  # mid-period half-window carries the bulk

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(0.0, 1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1e6, 0.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1e6, 1.0, trough_fraction=1.5)


def _small_plane(env, n_shards=2):
    return ServicePlane(
        env,
        n_shards=n_shards,
        n_partitions=8,
        queue_cap=16,
        n_dispatchers=2,
        key_space=200,
        system_opts=dict(workers=2),
    )


def _small_spec(name, **over):
    params = dict(n_ops=300, rate=600000.0, key_space=200, value_size=64, seed=42)
    params.update(over)
    return build_scenario(name, **params)


class TestServicePlaneRun:
    def _run(self, name):
        env = make_env(n_cores=16)
        plane = _small_plane(env)
        spec = _small_spec(name)
        preload_plane(env, plane, spec["preload"])
        run = run_service_load(
            env,
            plane,
            spec["ops"],
            spec["arrivals"],
            rebalance_at=spec["rebalance_at"],
            rebalance_moves=spec["rebalance_moves"],
        )
        return plane, run, spec

    def test_accounting_identities(self):
        plane, run, spec = self._run("hotkey")
        report = build_slo_report(plane, run, spec)
        # Every arrival is admitted or shed, never both, never lost.
        assert report["offered"] == report["admitted"] + report["shed"]
        assert report["offered"] == 300
        # The driver waits for quiet: nothing is left in flight.
        assert report["completed"] == report["admitted"]
        # Migration sheds are a sub-category of sheds.
        assert report["shed"] >= report["rebalance_shed"]
        assert sum(report["offered_by_class"].values()) == report["offered"]
        # Latency histograms saw exactly the completed requests.
        measured = sum(
            s["count"] for s in report["latency"].values() if s["count"]
        )
        assert measured == report["completed"]

    def test_per_shard_rows_sum_to_totals(self):
        plane, run, spec = self._run("uniform")
        report = build_slo_report(plane, run, spec)
        for field in ("admitted", "shed", "completed", "errors"):
            assert sum(r[field] for r in report["per_shard"]) == report[field]
        owned = [p for r in report["per_shard"] for p in r["partitions"]]
        assert sorted(owned) == list(range(8))

    def test_migration_moves_partitions_and_audits(self):
        plane, run, spec = self._run("migration")
        report = build_slo_report(plane, run, spec)
        assert report["directory"]["version"] == len(report["moves"])
        assert len(report["moves"]) >= 1
        for move in report["moves"]:
            assert plane.directory.shard_of(move["partition"]) == move["to_shard"]

    def test_migrated_partition_reads_back_from_target(self):
        env = make_env(n_cores=16)
        plane = _small_plane(env)
        spec = _small_spec("uniform")
        preload_plane(env, plane, spec["preload"])
        partition = 0
        source = plane.directory.shard_of(partition)
        target = 1 - source
        moved_keys = [
            make_key(i)
            for i in range(200)
            if plane.partitioner.partition(make_key(i)) == partition
        ]
        assert moved_keys  # the partition actually owns some of the dataset

        def mover():
            ctx = env.cpu.new_thread("test-mover")
            copied = yield from plane.move_partition(ctx, partition, target)
            return copied

        copied = run_process(env, mover())
        assert copied == len(moved_keys)
        assert plane.directory.shard_of(partition) == target

        def reader():
            ctx = env.cpu.new_thread("test-reader")
            values = []
            for key in moved_keys:
                value = yield from plane.shards[target].kvs.get(ctx, key)
                values.append(value)
            return values

        values = run_process(env, reader())
        for key, value in zip(moved_keys, values):
            i = int(key[len(b"user"):])
            assert value == make_value(i, 64)

    def test_shedding_kicks_in_under_overload(self):
        env = make_env(n_cores=16)
        plane = _small_plane(env)
        spec = _small_spec("uniform", rate=5000000.0)
        preload_plane(env, plane, spec["preload"])
        run_service_load(env, plane, spec["ops"], spec["arrivals"])
        shed = sum(int(l.counters.get("shed")) for l in plane.lanes)
        assert shed > 0
        # Queue depth never exceeded the admission bound.
        for lane in plane.lanes:
            assert lane.max_depth <= 16

    def test_shards_open_via_registry_with_instance_names(self):
        env = make_env(n_cores=16)
        plane = _small_plane(env)
        assert plane.shard_names() == ["shard-0-2", "shard-1-2"]


def _serve_args(tmp_path, tag, extra=()):
    return [
        "--scenario", "hotkey",
        "--shards", "2",
        "--partitions", "8",
        "--ops", "300",
        "--rate", "600000",
        "--key-space", "200",
        "--dispatchers", "2",
        "--workers", "2",
        "--cores", "16",
        "--json", str(tmp_path / ("%s.json" % tag)),
        "--csv", str(tmp_path / ("%s.csv" % tag)),
    ] + list(extra)


class TestServeCLI:
    def test_report_is_byte_identical_across_reruns_and_seeds(self, tmp_path, capsys):
        assert serve.main(_serve_args(tmp_path, "a")) == 0
        assert serve.main(_serve_args(tmp_path, "b")) == 0
        assert serve.main(_serve_args(tmp_path, "c", ["--schedule-seed", "7"])) == 0
        assert serve.main(_serve_args(tmp_path, "d", ["--schedule-seed", "99"])) == 0
        a = (tmp_path / "a.json").read_bytes()
        assert a == (tmp_path / "b.json").read_bytes()
        assert a == (tmp_path / "c.json").read_bytes()
        assert a == (tmp_path / "d.json").read_bytes()
        csv_a = (tmp_path / "a.csv").read_bytes()
        assert csv_a == (tmp_path / "c.csv").read_bytes()

    def test_report_contents(self, tmp_path, capsys):
        assert serve.main(_serve_args(tmp_path, "r")) == 0
        out = capsys.readouterr().out
        assert "p99 us" in out and "shard" in out
        report = json.loads((tmp_path / "r.json").read_text())
        assert report["offered"] == 300
        assert report["offered"] == report["admitted"] + report["shed"]
        assert report["completed"] == report["admitted"]
        assert report["shards_opened"] == ["shard-0-2", "shard-1-2"]
        assert set(report["latency"]) == {"read", "write", "rmw"}
        assert report["latency"]["read"]["p99_us"] > 0
        csv_text = (tmp_path / "r.csv").read_text()
        assert csv_text.startswith("shard,instance,admitted,shed")
        assert len(csv_text.strip().split("\n")) == 4  # header + 2 shards + total

    def test_fault_injection_surfaces_per_shard(self, tmp_path, capsys):
        rc = serve.main(
            _serve_args(tmp_path, "f", ["--fault-rate", "0.6", "--fault-seed", "3"])
        )
        assert rc == 0
        report = json.loads((tmp_path / "f.json").read_text())
        # Injection must at least perturb the run; with deep retries most
        # faults are absorbed, so errors may legitimately be zero — but the
        # accounting identities must survive either way.
        assert report["offered"] == report["admitted"] + report["shed"]
        assert report["completed"] == report["admitted"]
        assert report["errors"] == sum(r["errors"] for r in report["per_shard"])

    def test_rejects_zero_shards(self, capsys):
        assert serve.main(["--shards", "0"]) == 2

    def test_single_shard_runs(self, tmp_path, capsys):
        args = _serve_args(tmp_path, "s1")
        args[args.index("--shards") + 1] = "1"
        assert serve.main(args) == 0
        report = json.loads((tmp_path / "s1.json").read_text())
        assert len(report["per_shard"]) == 1
