"""Tests for the event loop, events and processes."""

import pytest

from repro.sim import Simulator, SimError


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(1.5)
        seen.append(sim.now)
        yield sim.timeout(0.5)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [1.5, 2.0]


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(1.0, value="hello")
        got.append(value)

    sim.spawn(proc())
    sim.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.timeout(-1)


def test_process_return_value_via_yield():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(2.0)
        return 42

    def parent():
        value = yield sim.spawn(child())
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(2.0, 42)]


def test_yield_from_composition():
    sim = Simulator()
    out = []

    def inner():
        yield sim.timeout(1.0)
        return "inner-result"

    def outer():
        value = yield from inner()
        out.append(value)

    sim.spawn(outer())
    sim.run()
    assert out == ["inner-result"]


def test_events_fire_in_fifo_order_at_same_time():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for i in range(5):
        sim.spawn(proc(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    def trigger():
        yield sim.timeout(3.0)
        ev.succeed("done")

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert got == [(3.0, "done")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimError):
        ev.succeed(2)


def test_event_fail_raises_inside_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.spawn(bad())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimError):
        sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    results = []

    def child(d):
        yield sim.timeout(d)
        return d

    def parent():
        procs = [sim.spawn(child(d)) for d in (3.0, 1.0, 2.0)]
        values = yield sim.all_of(procs)
        results.append((sim.now, values))

    sim.spawn(parent())
    sim.run()
    assert results == [(3.0, [3.0, 1.0, 2.0])]


def test_all_of_empty_list():
    sim = Simulator()
    results = []

    def parent():
        values = yield sim.all_of([])
        results.append(values)

    sim.spawn(parent())
    sim.run()
    assert results == [[]]


def test_any_of_returns_first():
    sim = Simulator()
    results = []

    def child(d):
        yield sim.timeout(d)
        return d

    def parent():
        procs = [sim.spawn(child(d)) for d in (3.0, 1.0, 2.0)]
        index, value = yield sim.any_of(procs)
        results.append((sim.now, index, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(1.0, 1, 1.0)]


def test_run_until_stops_mid_simulation():
    sim = Simulator()
    seen = []

    def proc():
        for _ in range(10):
            yield sim.timeout(1.0)
            seen.append(sim.now)

    sim.spawn(proc())
    sim.run(until=4.5)
    assert seen == [1.0, 2.0, 3.0, 4.0]
    assert sim.now == 4.5
    # Resume from where we stopped.
    sim.run()
    assert len(seen) == 10


def test_wait_on_already_completed_process():
    sim = Simulator()
    out = []

    def quick():
        yield sim.timeout(1.0)
        return "quick"

    def late(proc):
        yield sim.timeout(5.0)
        value = yield proc
        out.append((sim.now, value))

    proc = sim.spawn(quick())
    sim.spawn(late(proc))
    sim.run()
    assert out == [(5.0, "quick")]
