"""Tests for the CPU core model and storage device model."""

import pytest

from repro.sim import (
    CPUSet,
    DeviceSpec,
    HDD_WD100EFAX,
    OPTANE_905P,
    SimError,
    Simulator,
    StorageDevice,
)


def make_cpu(sim, n_cores, migration_overhead=0.0):
    return CPUSet(sim, n_cores, migration_overhead=migration_overhead)


class TestCPUSet:
    def test_single_core_serializes_bursts(self):
        sim = Simulator()
        cpu = make_cpu(sim, 1)
        done = []

        def proc(tag):
            ctx = cpu.new_thread(tag)
            yield cpu.exec(ctx, 1.0, "work")
            done.append((tag, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_two_cores_run_in_parallel(self):
        sim = Simulator()
        cpu = make_cpu(sim, 2)
        done = []

        def proc(tag):
            ctx = cpu.new_thread(tag)
            yield cpu.exec(ctx, 1.0)
            done.append((tag, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert done == [("a", 1.0), ("b", 1.0)]

    def test_pinned_threads_queue_on_their_core(self):
        sim = Simulator()
        cpu = make_cpu(sim, 4)
        done = []

        def proc(tag):
            ctx = cpu.new_thread(tag, pinned=0)
            yield cpu.exec(ctx, 1.0)
            done.append((tag, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        # Both pinned to core 0: serialized even with 3 other free cores.
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_pin_out_of_range_rejected(self):
        sim = Simulator()
        cpu = make_cpu(sim, 2)
        with pytest.raises(SimError):
            cpu.new_thread("bad", pinned=5)

    def test_busy_accounting_per_category(self):
        sim = Simulator()
        cpu = make_cpu(sim, 1)
        ctx = cpu.new_thread("t")

        def proc():
            yield cpu.exec(ctx, 2.0, "wal")
            yield cpu.exec(ctx, 3.0, "memtable")

        sim.spawn(proc())
        sim.run()
        assert ctx.busy_by_category["wal"] == pytest.approx(2.0)
        assert ctx.busy_by_category["memtable"] == pytest.approx(3.0)
        assert ctx.busy_time == pytest.approx(5.0)

    def test_utilization(self):
        sim = Simulator()
        cpu = make_cpu(sim, 2)
        ctx = cpu.new_thread("t")

        def proc():
            yield cpu.exec(ctx, 4.0)

        sim.spawn(proc())
        sim.run(until=8.0)
        assert cpu.utilization(8.0) == pytest.approx(0.5)
        per_core = cpu.per_core_utilization(8.0)
        assert per_core[0] == pytest.approx(0.5)
        assert per_core[1] == 0.0

    def test_migration_overhead_applies_when_switching_cores(self):
        sim = Simulator()
        cpu = make_cpu(sim, 2, migration_overhead=0.5)
        ctx = cpu.new_thread("hopper")
        blocker_ctx = cpu.new_thread("blocker")
        trace = []

        def blocker():
            # Occupy core 0 for a long time so the hopper's second burst
            # lands on core 1.
            yield cpu.exec(blocker_ctx, 10.0)

        def hopper():
            yield cpu.exec(ctx, 1.0)  # core 1 free? core 0 taken by blocker
            trace.append(sim.now)
            yield cpu.exec(ctx, 1.0)  # same core: no migration charge
            trace.append(sim.now)

        sim.spawn(blocker())
        sim.spawn(hopper())
        sim.run()
        # First burst may pay migration only if last_core differs; initially
        # last_core is None so no charge; second burst reuses the same core.
        assert trace[1] - trace[0] == pytest.approx(1.0)

    def test_queued_work_dispatches_when_core_frees(self):
        sim = Simulator()
        cpu = make_cpu(sim, 1)
        order = []

        def proc(tag, dur):
            ctx = cpu.new_thread(tag)
            yield cpu.exec(ctx, dur)
            order.append(tag)

        for i in range(4):
            sim.spawn(proc("t%d" % i, 1.0))
        sim.run()
        assert order == ["t0", "t1", "t2", "t3"]
        assert sim.now == pytest.approx(4.0)


class TestDevice:
    def test_service_time_read_vs_write(self):
        spec = DeviceSpec("d", 100.0, 50.0, 1.0, 2.0, channels=1)
        assert spec.service_time("read", 100, random=False) == pytest.approx(2.0)
        assert spec.service_time("write", 100, random=False) == pytest.approx(4.0)

    def test_seek_time_applies_to_random_only(self):
        spec = HDD_WD100EFAX
        seq = spec.service_time("read", 4096, random=False)
        rnd = spec.service_time("read", 4096, random=True)
        assert rnd - seq == pytest.approx(spec.seek_time)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimError):
            OPTANE_905P.service_time("erase", 1, random=False)

    def test_single_channel_serializes(self):
        sim = Simulator()
        spec = DeviceSpec("d", 100.0, 100.0, 1.0, 1.0, channels=1)
        dev = StorageDevice(sim, spec)
        done = []

        def proc(tag):
            yield dev.write(100)  # 1.0 + 1.0 = 2.0 seconds
            done.append((tag, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert done == [("a", 2.0), ("b", 4.0)]

    def test_channels_overlap_setup_but_share_bandwidth(self):
        """Per-IO setup latencies overlap across channels; byte transfers
        share one pipe per direction, so aggregate bytes never exceed the
        spec bandwidth."""
        sim = Simulator()
        spec = DeviceSpec("d", 100.0, 100.0, 1.0, 1.0, channels=4)
        dev = StorageDevice(sim, spec)
        done = []

        def proc(tag):
            yield dev.write(100)
            done.append((tag, sim.now))

        for i in range(4):
            sim.spawn(proc(i))
        sim.run()
        # All setups overlap (1s); transfers of 1s each serialize on the pipe.
        assert sorted(t for _, t in done) == [2.0, 3.0, 4.0, 5.0]

    def test_reads_and_writes_use_independent_pipes(self):
        sim = Simulator()
        spec = DeviceSpec("d", 100.0, 100.0, 1.0, 1.0, channels=4)
        dev = StorageDevice(sim, spec)
        done = []

        def proc(kind):
            yield dev.submit(kind, 100)
            done.append((kind, sim.now))

        sim.spawn(proc("read"))
        sim.spawn(proc("write"))
        sim.run()
        assert sorted(done) == [("read", 2.0), ("write", 2.0)]

    def test_small_ios_reach_high_iops_via_channels(self):
        sim = Simulator()
        spec = DeviceSpec("d", 1e9, 1e9, 1.0, 1.0, channels=8)
        dev = StorageDevice(sim, spec)
        done = []

        def proc(tag):
            yield dev.read(1)  # transfer time ~ 0: setup dominates
            done.append(sim.now)

        for i in range(8):
            sim.spawn(proc(i))
        sim.run()
        assert all(abs(t - 1.0) < 1e-6 for t in done)  # all overlap

    def test_byte_accounting_by_category(self):
        sim = Simulator()
        dev = StorageDevice(sim, OPTANE_905P)

        def proc():
            yield dev.write(1000, category="wal")
            yield dev.write(2000, category="compaction")
            yield dev.read(500, category="read")

        sim.spawn(proc())
        sim.run()
        assert dev.bytes_by_category.get("wal") == 1000
        assert dev.bytes_by_category.get("compaction") == 2000
        assert dev.bytes_by_category.get("read") == 500
        assert dev.total_bytes("write") == 3000
        assert dev.total_bytes() == 3500

    def test_bandwidth_utilization(self):
        sim = Simulator()
        spec = DeviceSpec("d", 1000.0, 1000.0, 0.0, 0.0, channels=1)
        dev = StorageDevice(sim, spec)

        def proc():
            yield dev.write(500)

        sim.spawn(proc())
        sim.run(until=1.0)
        assert dev.bandwidth_utilization(1.0) == pytest.approx(0.5)

    def test_negative_io_rejected(self):
        sim = Simulator()
        dev = StorageDevice(sim, OPTANE_905P)
        with pytest.raises(SimError):
            dev.write(-1)
