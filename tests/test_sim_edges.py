"""Edge-case tests for the simulation kernel (failure paths, composition)."""

import pytest

from repro.sim import SimError, Simulator, StorageDevice
from repro.sim.device import DeviceSpec


class TestFailurePropagation:
    def test_all_of_fails_fast_on_child_failure(self):
        sim = Simulator()
        caught = []

        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("child died")

        def ok():
            yield sim.timeout(5.0)
            return "fine"

        def parent():
            procs = [sim.spawn(bad()), sim.spawn(ok())]
            try:
                yield sim.all_of(procs)
            except RuntimeError as exc:
                caught.append((sim.now, str(exc)))

        sim.spawn(parent())
        sim.run()
        assert caught == [(1.0, "child died")]

    def test_any_of_failure_propagates(self):
        sim = Simulator()
        caught = []

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("nope")

        def parent():
            try:
                yield sim.any_of([sim.spawn(bad())])
            except ValueError:
                caught.append(sim.now)

        sim.spawn(parent())
        sim.run()
        assert caught == [1.0]

    def test_exception_chains_through_yield_from(self):
        sim = Simulator()
        caught = []

        def inner():
            yield sim.timeout(1.0)
            raise KeyError("inner")

        def middle():
            yield from inner()

        def outer():
            try:
                yield from middle()
            except KeyError:
                caught.append(sim.now)

        sim.spawn(outer())
        sim.run()
        assert caught == [1.0]

    def test_waiting_on_failed_process_raises(self):
        sim = Simulator()
        caught = []

        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("x")

        proc = None

        def waiter():
            try:
                yield proc
            except RuntimeError:
                caught.append(True)

        proc = sim.spawn(bad())
        sim.spawn(waiter())
        sim.run()
        assert caught == [True]


class TestComposition:
    def test_spawn_from_inside_a_process(self):
        sim = Simulator()
        order = []

        def child():
            yield sim.timeout(1.0)
            order.append("child")

        def parent():
            order.append("parent-start")
            yield sim.spawn(child())
            order.append("parent-end")

        sim.spawn(parent())
        sim.run()
        assert order == ["parent-start", "child", "parent-end"]

    def test_deeply_nested_yield_from(self):
        sim = Simulator()

        def level(n):
            if n == 0:
                yield sim.timeout(1.0)
                return 0
            value = yield from level(n - 1)
            return value + 1

        result = []

        def root():
            result.append((yield from level(50)))

        sim.spawn(root())
        sim.run()
        assert result == [50]

    def test_many_processes_same_instant_deterministic(self):
        def run_once():
            sim = Simulator()
            order = []

            def proc(tag):
                yield sim.timeout(1.0)
                order.append(tag)

            for i in range(100):
                sim.spawn(proc(i))
            sim.run()
            return order

        assert run_once() == run_once() == list(range(100))

    def test_event_value_is_cached_after_trigger(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed({"payload": 1})
        assert ev.value == {"payload": 1}
        assert ev.ok

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimError):
            _ = ev.value


class TestDeviceQueueing:
    def test_queue_drains_fifo_when_channels_busy(self):
        sim = Simulator()
        spec = DeviceSpec("d", 1e9, 1e9, 1.0, 1.0, channels=1)
        device = StorageDevice(sim, spec)
        done = []

        def proc(tag):
            yield device.read(0)
            done.append(tag)

        for i in range(5):
            sim.spawn(proc(i))
        sim.run()
        assert done == [0, 1, 2, 3, 4]
        assert sim.now == pytest.approx(5.0)

    def test_mixed_read_write_interleave(self):
        sim = Simulator()
        spec = DeviceSpec("d", 100.0, 100.0, 0.5, 0.5, channels=2)
        device = StorageDevice(sim, spec)
        done = []

        def proc(kind, nbytes):
            yield device.submit(kind, nbytes)
            done.append((kind, sim.now))

        sim.spawn(proc("read", 50))
        sim.spawn(proc("write", 50))
        sim.run()
        # Separate pipes: both complete at setup + transfer.
        assert all(t == pytest.approx(1.0) for _, t in done)

    def test_io_counters(self):
        sim = Simulator()
        spec = DeviceSpec("d", 1e9, 1e9, 1e-6, 1e-6, channels=2)
        device = StorageDevice(sim, spec)

        def proc():
            yield device.write(10, category="wal")
            yield device.read(20, category="read")
            yield device.ram_read(30)

        sim.spawn(proc())
        sim.run()
        assert device.io_count.get("write") == 1
        assert device.io_count.get("read") == 1
        assert device.io_count.get("ram_read") == 1
        assert device.io_count.get("write:wal") == 1
        assert device.bytes_by_kind.get("ram") == 30
