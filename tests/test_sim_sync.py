"""Tests for locks, semaphores, condition variables, barriers and queues."""

import pytest

from repro.sim import (
    Barrier,
    Condition,
    FIFOQueue,
    Lock,
    QueueEmpty,
    Semaphore,
    SimError,
    Simulator,
)
from repro.sim.cpu import ThreadContext


def test_lock_mutual_exclusion_and_fifo_order():
    sim = Simulator()
    lock = Lock(sim)
    trace = []

    def proc(tag, hold):
        yield lock.acquire()
        trace.append(("acq", tag, sim.now))
        yield sim.timeout(hold)
        lock.release()

    sim.spawn(proc("a", 2.0))
    sim.spawn(proc("b", 1.0))
    sim.spawn(proc("c", 1.0))
    sim.run()
    assert trace == [("acq", "a", 0.0), ("acq", "b", 2.0), ("acq", "c", 3.0)]


def test_lock_release_without_acquire_rejected():
    sim = Simulator()
    lock = Lock(sim)
    with pytest.raises(SimError):
        lock.release()


def test_lock_wait_accounting():
    sim = Simulator()
    lock = Lock(sim)
    ctx = ThreadContext("t")

    def holder():
        yield lock.acquire()
        yield sim.timeout(5.0)
        lock.release()

    def waiter():
        yield sim.timeout(1.0)
        yield lock.acquire(ctx, "wal_lock")
        lock.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert ctx.wait_by_category["wal_lock"] == pytest.approx(4.0)


def test_semaphore_caps_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, capacity=2)
    active = []
    max_active = []

    def proc():
        yield sem.acquire()
        active.append(1)
        max_active.append(len(active))
        yield sim.timeout(1.0)
        active.pop()
        sem.release()

    for _ in range(6):
        sim.spawn(proc())
    sim.run()
    assert max(max_active) == 2
    assert sim.now == pytest.approx(3.0)


def test_condition_notify_all_wakes_everyone():
    sim = Simulator()
    cond = Condition(sim)
    woken = []

    def waiter(tag):
        yield cond.wait()
        woken.append((tag, sim.now))

    def notifier():
        yield sim.timeout(2.0)
        cond.notify_all()

    for i in range(3):
        sim.spawn(waiter(i))
    sim.spawn(notifier())
    sim.run()
    assert woken == [(0, 2.0), (1, 2.0), (2, 2.0)]


def test_condition_notify_one_at_a_time():
    sim = Simulator()
    cond = Condition(sim)
    woken = []

    def waiter(tag):
        yield cond.wait()
        woken.append(tag)

    def notifier():
        yield sim.timeout(1.0)
        cond.notify()
        yield sim.timeout(1.0)
        cond.notify()

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.spawn(notifier())
    sim.run()
    assert woken == ["a", "b"]
    assert cond.n_waiters == 0


def test_barrier_releases_all_at_last_arrival():
    sim = Simulator()
    barrier = Barrier(sim, parties=3)
    crossed = []

    def proc(tag, delay):
        yield sim.timeout(delay)
        yield barrier.arrive()
        crossed.append((tag, sim.now))

    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 3.0))
    sim.spawn(proc("c", 2.0))
    sim.run()
    assert sorted(crossed) == [("a", 3.0), ("b", 3.0), ("c", 3.0)]


def test_queue_get_blocks_until_put():
    sim = Simulator()
    q = FIFOQueue(sim)
    got = []

    def consumer():
        item = yield q.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(2.0)
        q.put("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [("x", 2.0)]


def test_queue_fifo_order_and_counters():
    sim = Simulator()
    q = FIFOQueue(sim)
    for i in range(5):
        q.put(i)
    assert len(q) == 5
    assert q.max_depth == 5
    assert q.total_enqueued == 5
    assert q.peek() == 0
    assert q.try_pop() == 0
    assert q.try_pop() == 1
    assert len(q) == 3


def test_queue_try_pop_empty_raises():
    sim = Simulator()
    q = FIFOQueue(sim)
    assert q.peek() is None
    with pytest.raises(QueueEmpty):
        q.try_pop()


def test_queue_multiple_waiting_getters_fifo():
    sim = Simulator()
    q = FIFOQueue(sim)
    got = []

    def consumer(tag):
        item = yield q.get()
        got.append((tag, item))

    def producer():
        yield sim.timeout(1.0)
        q.put("first")
        q.put("second")

    sim.spawn(consumer("c0"))
    sim.spawn(consumer("c1"))
    sim.spawn(producer())
    sim.run()
    assert got == [("c0", "first"), ("c1", "second")]
