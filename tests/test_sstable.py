"""Tests for SSTable build, point lookup, cursors, bloom and block cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import OPTANE_905P, Simulator, StorageDevice
from repro.storage.block_cache import BlockCache
from repro.storage.bloom import BloomFilter
from repro.storage.memtable import DELETED, FOUND, MAX_SEQ, NOT_FOUND, VTYPE_DELETE, VTYPE_VALUE
from repro.storage.sstable import SSTableBuilder


def key(i):
    return b"key%08d" % i


def build_table(n=100, number=1, block_target=256):
    builder = SSTableBuilder(number, block_target=block_target)
    for i in range(n):
        builder.add(key(i), 1, VTYPE_VALUE, b"value%d" % i)
    return builder.finish()


def run(gen):
    sim = Simulator()
    device = StorageDevice(sim, OPTANE_905P)
    results = []

    def wrapper():
        value = yield from gen(device)
        results.append(value)

    sim.spawn(wrapper())
    sim.run()
    return results[0], device


class TestBloom:
    def test_no_false_negatives(self):
        keys = [key(i) for i in range(1000)]
        bf = BloomFilter.from_keys(keys)
        assert all(bf.may_contain(k) for k in keys)

    def test_low_false_positive_rate(self):
        bf = BloomFilter.from_keys([key(i) for i in range(1000)])
        fps = sum(bf.may_contain(key(i)) for i in range(10000, 20000))
        assert fps / 10000 < 0.05

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BloomFilter(10, bits_per_key=0)


class TestBlockCache:
    def test_hit_miss_and_eviction(self):
        cache = BlockCache(100)
        assert cache.get("a") is None
        cache.put("a", "blockA", 60)
        cache.put("b", "blockB", 60)  # evicts a
        assert cache.get("a") is None
        assert cache.get("b") == "blockB"
        assert cache.misses == 2 and cache.hits == 1

    def test_lru_order_updated_on_get(self):
        cache = BlockCache(100)
        cache.put("a", "A", 40)
        cache.put("b", "B", 40)
        cache.get("a")  # a is now most recent
        cache.put("c", "C", 40)  # evicts b
        assert cache.get("a") == "A"
        assert cache.get("b") is None

    def test_oversized_item_not_cached(self):
        cache = BlockCache(100)
        cache.put("big", "x", 500)
        assert "big" not in cache


class TestSSTable:
    def test_builder_requires_sorted_input(self):
        builder = SSTableBuilder(1)
        builder.add(b"b", 1, VTYPE_VALUE, b"")
        with pytest.raises(ValueError):
            builder.add(b"a", 1, VTYPE_VALUE, b"")

    def test_builder_rejects_empty(self):
        with pytest.raises(ValueError):
            SSTableBuilder(1).finish()

    def test_metadata(self):
        table = build_table(50)
        assert table.smallest == key(0)
        assert table.largest == key(49)
        assert table.entry_count == 50
        assert table.file_size > 0
        assert len(table.blocks) > 1  # small block target splits blocks

    def test_overlap(self):
        table = build_table(50)
        assert table.overlaps(key(10), key(20))
        assert table.overlaps(None, key(0))
        assert table.overlaps(key(49), None)
        assert not table.overlaps(key(50), key(99))

    def test_get_found(self):
        table = build_table(100)
        (state, value), device = run(
            lambda dev: table.get(key(42), MAX_SEQ, None, dev)
        )
        assert (state, value) == (FOUND, b"value42")
        assert device.bytes_by_kind.get("read") > 0

    def test_get_absent_key_in_range_costs_at_most_one_block(self):
        table = build_table(100)
        # key not present but inside [smallest, largest]; bloom usually stops it
        (state, _), device = run(
            lambda dev: table.get(b"key00000042x", MAX_SEQ, None, dev)
        )
        assert state == NOT_FOUND

    def test_get_out_of_range_is_free(self):
        table = build_table(100)
        (state, _), device = run(lambda dev: table.get(b"zzz", MAX_SEQ, None, dev))
        assert state == NOT_FOUND
        assert device.total_bytes() == 0

    def test_tombstone_read(self):
        builder = SSTableBuilder(1)
        builder.add(b"a", 2, VTYPE_DELETE, b"")
        builder.add(b"a", 1, VTYPE_VALUE, b"old")
        table = builder.finish()
        (state, _), _ = run(lambda dev: table.get(b"a", MAX_SEQ, None, dev))
        assert state == DELETED

    def test_snapshot_get_sees_old_version(self):
        builder = SSTableBuilder(1)
        builder.add(b"a", 5, VTYPE_VALUE, b"new")
        builder.add(b"a", 2, VTYPE_VALUE, b"old")
        table = builder.finish()
        (state, value), _ = run(lambda dev: table.get(b"a", 3, None, dev))
        assert (state, value) == (FOUND, b"old")
        (state, value), _ = run(lambda dev: table.get(b"a", MAX_SEQ, None, dev))
        assert (state, value) == (FOUND, b"new")

    def test_block_cache_avoids_repeat_io(self):
        table = build_table(100)
        cache = BlockCache(1 << 20)

        def double_get(dev):
            yield from table.get(key(10), MAX_SEQ, cache, dev)
            first = dev.total_bytes()
            yield from table.get(key(10), MAX_SEQ, cache, dev)
            return first, dev.total_bytes()

        (first, second), _ = run(double_get)
        assert second == first  # second get served from cache

    def test_cursor_full_scan(self):
        table = build_table(30)

        def scan(dev):
            cur = table.cursor(None, dev)
            yield from cur.seek(None)
            out = []
            while cur.current is not None:
                out.append(cur.current[0])
                yield from cur.advance()
            return out

        keys, _ = run(scan)
        assert keys == [key(i) for i in range(30)]

    def test_cursor_seek_midway(self):
        table = build_table(30)

        def scan(dev):
            cur = table.cursor(None, dev)
            yield from cur.seek(key(25))
            out = []
            while cur.current is not None:
                out.append(cur.current[0])
                yield from cur.advance()
            return out

        keys, _ = run(scan)
        assert keys == [key(i) for i in range(25, 30)]

    def test_cursor_seek_past_end(self):
        table = build_table(10)

        def scan(dev):
            cur = table.cursor(None, dev)
            yield from cur.seek(b"zzzz")
            return cur.current

        current, _ = run(scan)
        assert current is None

    def test_read_all_entries_charges_sequential_read(self):
        table = build_table(100)
        entries, device = run(lambda dev: table.read_all_entries(dev))
        assert len(entries) == 100
        assert device.bytes_by_category.get("compaction") == table.file_size

    @given(st.sets(st.integers(0, 5000), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_every_inserted_key_is_found(self, key_ids):
        builder = SSTableBuilder(1, block_target=512)
        for i in sorted(key_ids):
            builder.add(key(i), 1, VTYPE_VALUE, b"v%d" % i)
        table = builder.finish()

        def check(dev):
            for i in sorted(key_ids):
                state, value = yield from table.get(key(i), MAX_SEQ, None, dev)
                assert (state, value) == (FOUND, b"v%d" % i)
            return True

        ok, _ = run(check)
        assert ok
