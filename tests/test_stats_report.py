"""Tests for measurement primitives and report formatting."""

import pytest

from repro.harness.report import ShapeCheck, format_qps, format_table
from repro.sim.stats import Counter, Histogram, TimeSeries, UtilizationTracker


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("x")
        c.add("x", 2.5)
        assert c.get("x") == 3.5
        assert c.get("missing") == 0.0

    def test_as_dict_copies(self):
        c = Counter()
        c.add("a", 1)
        d = c.as_dict()
        d["a"] = 99
        assert c.get("a") == 1


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.p99 == 0.0
        assert h.max == 0.0

    def test_mean_and_max(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.mean == pytest.approx(2.0)
        assert h.max == 3.0
        assert len(h) == 3

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(float(v))
        assert h.percentile(50) == 50.0
        assert h.p99 == 99.0
        assert h.percentile(100) == 100.0
        assert h.percentile(1) == 1.0

    def test_percentile_single_sample(self):
        h = Histogram()
        h.record(42.0)
        assert h.p50 == 42.0
        assert h.p99 == 42.0

    def test_record_after_sort_stays_correct(self):
        h = Histogram()
        h.record(5.0)
        _ = h.p50  # forces a sort
        h.record(1.0)
        assert h.p50 == 1.0 or h.p50 == 5.0
        assert h.percentile(100) == 5.0


class TestTimeSeries:
    def test_add_bins_by_time(self):
        ts = TimeSeries(bin_width=1.0)
        ts.add(0.5, 10)
        ts.add(0.9, 5)
        ts.add(1.1, 7)
        rates = dict(ts.rates())
        assert rates[0.0] == pytest.approx(15.0)
        assert rates[1.0] == pytest.approx(7.0)
        assert ts.total() == pytest.approx(22.0)

    def test_add_interval_splits_across_bins(self):
        ts = TimeSeries(bin_width=1.0)
        ts.add_interval(0.5, 2.5, amount_per_second=10.0)
        rates = dict(ts.rates())
        assert rates[0.0] == pytest.approx(5.0)
        assert rates[1.0] == pytest.approx(10.0)
        assert rates[2.0] == pytest.approx(5.0)

    def test_add_interval_empty(self):
        ts = TimeSeries(bin_width=1.0)
        ts.add_interval(2.0, 2.0, 100.0)
        assert ts.total() == 0.0

    def test_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            TimeSeries(bin_width=0)


class TestUtilizationTracker:
    def test_busy_accumulates(self):
        t = UtilizationTracker()
        t.mark_busy(0.0, 2.0)
        t.mark_busy(3.0, 4.0)
        assert t.busy_time == pytest.approx(3.0)
        assert t.utilization(6.0) == pytest.approx(0.5)

    def test_series_when_configured(self):
        t = UtilizationTracker(series_bin=1.0)
        t.mark_busy(0.0, 0.5)
        series = dict(t.series())
        assert series[0.0] == pytest.approx(0.5)

    def test_rejects_negative_interval(self):
        t = UtilizationTracker()
        with pytest.raises(ValueError):
            t.mark_busy(2.0, 1.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22.5], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_format_qps_units(self):
        assert format_qps(500) == "500 QPS"
        assert format_qps(12_345) == "12.3 KQPS"
        assert format_qps(2_500_000) == "2.50 MQPS"

    def test_shape_check_lower_bound(self):
        check = ShapeCheck("x", "2x", measured=2.5, lo=2.0)
        assert check.ok
        assert ShapeCheck("x", "2x", measured=1.5, lo=2.0).ok is False

    def test_shape_check_band(self):
        assert ShapeCheck("x", "~1x", 1.0, 0.5, 2.0).ok
        assert not ShapeCheck("x", "~1x", 3.0, 0.5, 2.0).ok
        assert not ShapeCheck("x", "~1x", 0.1, 0.5, 2.0).ok

    def test_shape_check_row_verdict(self):
        row = ShapeCheck("name", "p", 1.0, 0.5, 2.0).row()
        assert row[-1] == "OK"
        row = ShapeCheck("name", "p", 9.0, 0.5, 2.0).row()
        assert row[-1] == "MISS"
