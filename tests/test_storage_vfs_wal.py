"""Tests for the virtual file system (crash semantics) and WAL format."""

import pytest

from repro.errors import Corruption
from repro.sim import OPTANE_905P, Simulator, StorageDevice
from repro.storage.vfs import DiskImage
from repro.storage.wal import (
    RECORD_STANDALONE,
    RECORD_TXN,
    LogReader,
    LogWriter,
    encode_record,
)


def make_disk():
    sim = Simulator()
    device = StorageDevice(sim, OPTANE_905P)
    return sim, DiskImage(sim, device)


def run(sim, gen):
    results = []

    def wrapper():
        value = yield from gen
        results.append(value)

    sim.spawn(wrapper())
    sim.run()
    return results[0] if results else None


class TestVirtualFile:
    def test_append_is_buffered_until_flush(self):
        sim, disk = make_disk()
        f = disk.open_file("wal-1")
        f.append(b"hello")
        assert f.size == 5
        assert f.pending_bytes == 5
        assert f.durable_content() == b""
        run(sim, f.flush())
        assert f.pending_bytes == 0
        assert f.durable_content() == b"hello"

    def test_flush_charges_device_write(self):
        sim, disk = make_disk()
        f = disk.open_file("wal-1")
        f.append(b"x" * 1000)
        run(sim, f.flush(category="wal"))
        assert disk.device.bytes_by_category.get("wal") == 1000

    def test_crash_drops_unflushed_tail(self):
        sim, disk = make_disk()
        f = disk.open_file("wal-1")
        f.append(b"durable")
        run(sim, f.flush())
        f.append(b"volatile")
        disk.crash()
        assert bytes(f.content) == b"durable"

    def test_read_returns_data_and_charges_io(self):
        sim, disk = make_disk()
        f = disk.open_file("data")
        f.append(b"0123456789")
        data = run(sim, f.read(2, 4))
        assert data == b"2345"
        assert disk.device.bytes_by_kind.get("read") == 4

    def test_read_all(self):
        sim, disk = make_disk()
        f = disk.open_file("data")
        f.append(b"abcdef")
        assert run(sim, f.read_all()) == b"abcdef"

    def test_open_missing_without_create_raises(self):
        _, disk = make_disk()
        with pytest.raises(FileNotFoundError):
            disk.open_file("nope", create=False)

    def test_list_and_delete(self):
        _, disk = make_disk()
        disk.open_file("wal-1")
        disk.open_file("wal-2")
        disk.open_file("manifest")
        assert disk.list_files("wal-") == ["wal-1", "wal-2"]
        disk.delete_file("wal-1")
        assert disk.list_files("wal-") == ["wal-2"]


class TestBlobs:
    def test_uncommitted_blob_lost_on_crash(self):
        _, disk = make_disk()
        disk.put_blob("sst-1", object(), 1000)
        assert not disk.blob_exists("sst-1")
        disk.crash()
        with pytest.raises(KeyError):
            disk.get_blob("sst-1")

    def test_committed_blob_survives_crash(self):
        _, disk = make_disk()
        marker = object()
        disk.put_blob("sst-1", marker, 1000)
        disk.commit_blob("sst-1")
        disk.crash()
        assert disk.blob_exists("sst-1")
        assert disk.get_blob("sst-1") is marker
        assert disk.blob_bytes() == 1000


class TestWal:
    def test_roundtrip_records(self):
        sim, disk = make_disk()
        f = disk.open_file("wal")
        writer = LogWriter(f)
        writer.append(b"first", RECORD_STANDALONE, gsn=1)
        writer.append(b"second", RECORD_TXN, gsn=2)
        records = list(LogReader(f.content))
        assert [(r.rtype, r.gsn, r.payload) for r in records] == [
            (RECORD_STANDALONE, 1, b"first"),
            (RECORD_TXN, 2, b"second"),
        ]

    def test_append_returns_encoded_size(self):
        sim, disk = make_disk()
        writer = LogWriter(disk.open_file("wal"))
        n = writer.append(b"payload")
        assert n == len(encode_record(b"payload"))
        assert writer.pending_bytes == n

    def test_reader_stops_at_truncated_tail(self):
        data = encode_record(b"good") + encode_record(b"lost-tail")[:-3]
        reader = LogReader(data)
        records = list(reader)
        assert [r.payload for r in records] == [b"good"]
        assert reader.truncated

    def test_reader_raises_corruption_on_bad_crc(self):
        # A CRC mismatch on a fully-present record is real damage, not a
        # crash tail (truncation can only remove a suffix): it must raise.
        data = bytearray(encode_record(b"aaaa") + encode_record(b"bbbb"))
        data[-1] ^= 0xFF  # corrupt last payload byte
        reader = LogReader(data, source="wal")
        decoded = []
        with pytest.raises(Corruption) as excinfo:
            for record in reader:
                decoded.append(record.payload)
        assert decoded == [b"aaaa"]
        assert not reader.truncated
        assert excinfo.value.site == "wal"

    def test_crash_then_replay_recovers_only_durable_records(self):
        sim, disk = make_disk()
        f = disk.open_file("wal")
        writer = LogWriter(f)
        writer.append(b"one")
        run(sim, writer.flush())
        writer.append(b"two")  # never flushed
        disk.crash()
        records = list(LogReader(f.content))
        assert [r.payload for r in records] == [b"one"]

    def test_empty_log(self):
        reader = LogReader(b"")
        assert list(reader) == []
        assert not reader.truncated
