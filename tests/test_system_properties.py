"""System-level property tests: p2KVS end-to-end vs a dict model, and
conservation invariants of the simulation kernel."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import P2KVS, adapter_factory
from repro.engine import make_env
from repro.sim import CPUSet, DeviceSpec, Simulator, StorageDevice
from tests.conftest import run_process

KEYS = [b"user%04d" % i for i in range(24)]

TINY = adapter_factory(
    "rocksdb",
    write_buffer_size=1024,
    target_file_size=1024,
    max_bytes_for_level_base=4096,
    l0_compaction_trigger=2,
)

p2kvs_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS), st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just(b"")),
        st.tuples(st.just("get"), st.sampled_from(KEYS), st.just(b"")),
        st.tuples(st.just("scan"), st.sampled_from(KEYS), st.integers(1, 8)),
    ),
    max_size=80,
)


@given(ops=p2kvs_ops)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_p2kvs_matches_dict_model(ops):
    """PUT/DELETE/GET/SCAN through the full framework (router, queues, OBM,
    engines with flush+compaction) must behave exactly like a sorted dict."""
    env = make_env(n_cores=4)
    kvs = run_process(env, P2KVS.open(env, n_workers=3, adapter_open=TINY))
    ctx = env.cpu.new_thread("u")
    model = {}

    def work():
        for op, key, payload in ops:
            if op == "put":
                yield from kvs.put(ctx, key, payload)
                model[key] = payload
            elif op == "delete":
                yield from kvs.delete(ctx, key)
                model.pop(key, None)
            elif op == "get":
                got = yield from kvs.get(ctx, key)
                assert got == model.get(key), (key, got)
            else:  # scan
                got = yield from kvs.scan(ctx, key, payload)
                expected = sorted(
                    (k, v) for k, v in model.items() if k >= key
                )[:payload]
                assert got == expected, (key, payload)
        # Final full verification.
        for key in KEYS:
            got = yield from kvs.get(ctx, key)
            assert got == model.get(key)

    run_process(env, work())


@given(ops=p2kvs_ops)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_p2kvs_crash_recovery_after_close_preserves_model(ops):
    env = make_env(n_cores=4)
    kvs = run_process(env, P2KVS.open(env, n_workers=3, adapter_open=TINY))
    ctx = env.cpu.new_thread("u")
    model = {}

    def work():
        for op, key, payload in ops:
            if op == "put":
                yield from kvs.put(ctx, key, payload)
                model[key] = payload
            elif op == "delete":
                yield from kvs.delete(ctx, key)
                model.pop(key, None)
        yield from kvs.close()

    run_process(env, work())
    env.disk.crash()
    kvs2 = run_process(env, P2KVS.open(env, n_workers=3, adapter_open=TINY))
    ctx2 = env.cpu.new_thread("u2")

    def verify():
        for key in KEYS:
            got = yield from kvs2.get(ctx2, key)
            assert got == model.get(key), key

    run_process(env, verify())


class TestKernelInvariants:
    @given(
        bursts=st.lists(
            st.tuples(st.integers(0, 3), st.floats(1e-6, 1e-3)),
            min_size=1,
            max_size=40,
        ),
        n_cores=st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_cpu_busy_time_bounded_by_cores_times_elapsed(self, bursts, n_cores):
        """No CPU model execution can fabricate more busy time than
        n_cores * elapsed, whatever the contention pattern."""
        sim = Simulator()
        cpu = CPUSet(sim, n_cores, migration_overhead=0.0)

        def proc(tid, dur):
            ctx = cpu.new_thread("t%d" % tid, pinned=tid % n_cores)
            yield cpu.exec(ctx, dur)

        for i, (_, dur) in enumerate(bursts):
            sim.spawn(proc(i, dur))
        sim.run()
        total_busy = cpu.total_busy_time()
        assert total_busy <= n_cores * sim.now + 1e-12
        assert total_busy >= max(d for _, d in bursts) - 1e-12

    @given(
        ios=st.lists(
            st.tuples(st.sampled_from(["read", "write"]), st.integers(1, 100000)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_device_never_exceeds_direction_bandwidth(self, ios):
        """Whatever the submission pattern, bytes moved per direction can
        never exceed bandwidth * elapsed (the shared-pipe invariant the
        first device model violated)."""
        sim = Simulator()
        spec = DeviceSpec("d", 1e6, 1e6, 1e-6, 1e-6, channels=8)
        device = StorageDevice(sim, spec)

        def proc(kind, nbytes):
            yield device.submit(kind, nbytes)

        for kind, nbytes in ios:
            sim.spawn(proc(kind, nbytes))
        sim.run()
        elapsed = sim.now
        for kind, bandwidth in (("read", spec.read_bandwidth), ("write", spec.write_bandwidth)):
            moved = device.bytes_by_kind.get(kind)
            assert moved <= bandwidth * elapsed + 1e-6

    @given(
        delays=st.lists(st.floats(0, 1e-3), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_sim_time_monotonic_across_events(self, delays):
        sim = Simulator()
        observed = []

        def proc(delay):
            yield sim.timeout(delay)
            observed.append(sim.now)

        for delay in delays:
            sim.spawn(proc(delay))
        sim.run()
        assert observed == sorted(observed)
        assert sim.now == max(delays)
