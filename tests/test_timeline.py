"""Tests for the ASCII time-series renderer."""

from repro.harness.timeline import render_series, render_stacked, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_scales_to_max(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == " "
        assert line[-1] == "█"
        assert len(line) == 3

    def test_explicit_peak(self):
        line = sparkline([1.0, 1.0], peak=2.0)
        assert line == "▄▄"

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_clamps_above_peak(self):
        line = sparkline([5.0], peak=1.0)
        assert line == "█"


class TestRenderSeries:
    def test_resamples_and_labels(self):
        points = [(i * 0.1, float(i)) for i in range(100)]
        out = render_series(points, "wal", width=20, unit_scale=1.0, unit="B/s")
        assert out.startswith("wal")
        assert "peak" in out and "B/s" in out

    def test_empty_series(self):
        out = render_series([], "x")
        assert "peak 0.0" in out

    def test_single_point(self):
        out = render_series([(0.0, 42.0)], "x", unit_scale=1.0)
        assert "42.0" in out


class TestRenderStacked:
    def test_shared_peak_across_categories(self):
        series = {
            "small": [(0.0, 1.0), (1.0, 1.0)],
            "big": [(0.0, 10.0), (1.0, 10.0)],
        }
        out = render_stacked(series, width=10, unit_scale=1.0)
        lines = out.splitlines()
        assert len(lines) == 2
        # The small series renders low against the shared peak.
        small_line = next(l for l in lines if l.startswith("small"))
        big_line = next(l for l in lines if l.startswith("big"))
        assert "█" in big_line
        assert "█" not in small_line.split("peak")[0]

    def test_empty_dict(self):
        assert render_stacked({}) == ""
