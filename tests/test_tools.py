"""Tests for the dbbench and ycsb CLI tools."""

import json

import pytest

from repro.tools import dbbench, ycsb


def small_db_args(extra=()):
    return [
        "--num", "400",
        "--threads", "2",
        "--workers", "2",
        "--cores", "8",
    ] + list(extra)


class TestDbBench:
    def test_runs_fill_and_read(self, capsys):
        rc = dbbench.main(
            small_db_args(["--benchmarks", "fillrandom,readrandom"])
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fillrandom" in out and "readrandom" in out
        assert "KQPS" in out or "MQPS" in out or "QPS" in out

    def test_every_system_kind_runs(self, capsys):
        for system in ("rocksdb", "leveldb", "pebblesdb", "multi", "p2kvs", "kvell", "wiredtiger"):
            rc = dbbench.main(
                small_db_args(["--benchmarks", "fillrandom", "--system", system])
            )
            assert rc == 0, system

    def test_scan_benchmark(self, capsys):
        rc = dbbench.main(small_db_args(["--benchmarks", "scan"]))
        assert rc == 0
        assert "scan" in capsys.readouterr().out

    def test_overwrite_preloads(self, capsys):
        rc = dbbench.main(small_db_args(["--benchmarks", "overwrite"]))
        assert rc == 0

    def test_hdd_device(self, capsys):
        rc = dbbench.main(
            small_db_args(["--benchmarks", "fillseq", "--device", "hdd"])
        )
        assert rc == 0
        assert "device=hdd" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "r.json"
        rc = dbbench.main(
            small_db_args(["--benchmarks", "fillrandom", "--json", str(out_file)])
        )
        assert rc == 0
        data = json.loads(out_file.read_text())
        assert data[0]["benchmark"] == "fillrandom"
        assert data[0]["qps"] > 0

    def test_unknown_benchmark_rejected(self, capsys):
        rc = dbbench.main(small_db_args(["--benchmarks", "explode"]))
        assert rc == 2

    def test_p2kvs_flags(self, capsys):
        rc = dbbench.main(
            small_db_args(
                [
                    "--benchmarks", "fillrandom",
                    "--system", "p2kvs",
                    "--no-obm",
                    "--async-window", "32",
                ]
            )
        )
        assert rc == 0

    def test_page_cache_flag(self, capsys):
        rc = dbbench.main(
            small_db_args(
                ["--benchmarks", "readrandom", "--page-cache-mb", "0.25"]
            )
        )
        assert rc == 0


class TestYcsbCli:
    def args(self, extra=()):
        return [
            "--records", "400",
            "--ops", "300",
            "--threads", "2",
            "--workers", "2",
            "--cores", "8",
        ] + list(extra)

    def test_load_workload(self, capsys):
        rc = ycsb.main(self.args(["--workload", "LOAD"]))
        assert rc == 0
        assert "LOAD" in capsys.readouterr().out

    def test_mixed_workloads(self, capsys):
        rc = ycsb.main(self.args(["--workload", "a,c"]))
        assert rc == 0
        out = capsys.readouterr().out
        assert "A" in out and "C" in out

    def test_scan_workload_e(self, capsys):
        rc = ycsb.main(self.args(["--workload", "E", "--ops", "50"]))
        assert rc == 0

    def test_unknown_workload_rejected(self, capsys):
        rc = ycsb.main(self.args(["--workload", "Z"]))
        assert rc == 2

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "y.json"
        rc = ycsb.main(
            self.args(["--workload", "C", "--json", str(out_file)])
        )
        assert rc == 0
        data = json.loads(out_file.read_text())
        assert data[0]["workload"] == "C"

    def test_p2kvs_system(self, capsys):
        rc = ycsb.main(self.args(["--workload", "B", "--system", "p2kvs"]))
        assert rc == 0
