"""Tests for the dbbench and ycsb CLI tools."""

import json

import pytest

from repro.tools import dbbench, ycsb


def _csv_column(csv_text, name):
    """All non-empty values of one column of a stats CSV, as floats."""
    lines = csv_text.strip().split("\n")
    header = lines[0].split(",")
    idx = header.index(name)
    return [
        float(cells[idx])
        for cells in (line.split(",") for line in lines[1:])
        if cells[idx]
    ]


def small_db_args(extra=()):
    return [
        "--num", "400",
        "--threads", "2",
        "--workers", "2",
        "--cores", "8",
    ] + list(extra)


class TestDbBench:
    def test_runs_fill_and_read(self, capsys):
        rc = dbbench.main(
            small_db_args(["--benchmarks", "fillrandom,readrandom"])
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fillrandom" in out and "readrandom" in out
        assert "KQPS" in out or "MQPS" in out or "QPS" in out

    def test_every_system_kind_runs(self, capsys):
        for system in ("rocksdb", "leveldb", "pebblesdb", "multi", "p2kvs", "kvell", "wiredtiger"):
            rc = dbbench.main(
                small_db_args(["--benchmarks", "fillrandom", "--system", system])
            )
            assert rc == 0, system

    def test_scan_benchmark(self, capsys):
        rc = dbbench.main(small_db_args(["--benchmarks", "scan"]))
        assert rc == 0
        assert "scan" in capsys.readouterr().out

    def test_overwrite_preloads(self, capsys):
        rc = dbbench.main(small_db_args(["--benchmarks", "overwrite"]))
        assert rc == 0

    def test_hdd_device(self, capsys):
        rc = dbbench.main(
            small_db_args(["--benchmarks", "fillseq", "--device", "hdd"])
        )
        assert rc == 0
        assert "device=hdd" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "r.json"
        rc = dbbench.main(
            small_db_args(["--benchmarks", "fillrandom", "--json", str(out_file)])
        )
        assert rc == 0
        data = json.loads(out_file.read_text())
        assert data[0]["benchmark"] == "fillrandom"
        assert data[0]["qps"] > 0

    def test_unknown_benchmark_rejected(self, capsys):
        rc = dbbench.main(small_db_args(["--benchmarks", "explode"]))
        assert rc == 2

    def test_p2kvs_flags(self, capsys):
        rc = dbbench.main(
            small_db_args(
                [
                    "--benchmarks", "fillrandom",
                    "--system", "p2kvs",
                    "--no-obm",
                    "--async-window", "32",
                ]
            )
        )
        assert rc == 0

    def test_page_cache_flag(self, capsys):
        rc = dbbench.main(
            small_db_args(
                ["--benchmarks", "readrandom", "--page-cache-mb", "0.25"]
            )
        )
        assert rc == 0

    def test_stats_flag_writes_three_exports(self, tmp_path, capsys):
        base = tmp_path / "s"
        rc = dbbench.main(
            small_db_args(
                [
                    "--benchmarks", "fillrandom",
                    "--system", "p2kvs",
                    "--stats",
                    "--stats-interval-ms", "0.02",
                    "--stats-out", str(base),
                ]
            )
        )
        assert rc == 0
        snapshot = json.loads((tmp_path / "s.json").read_text())
        assert any(k.endswith(".wal_appends") for k in snapshot["counters"])
        prom = (tmp_path / "s.prom").read_text()
        assert "# TYPE p2kvs_" in prom
        csv = (tmp_path / "s.csv").read_text()
        assert csv.startswith("time,")
        out = capsys.readouterr().out
        assert "stall/utilization timeline" in out
        assert "wrote stats" in out

    def test_stats_off_leaves_no_artifacts(self, tmp_path, capsys):
        rc = dbbench.main(
            small_db_args(
                ["--benchmarks", "fillrandom", "--stats-out", str(tmp_path / "s")]
            )
        )
        assert rc == 0
        assert list(tmp_path.iterdir()) == []
        assert "wrote stats" not in capsys.readouterr().out

    def test_stats_multiple_benchmarks_get_separate_bases(self, tmp_path, capsys):
        rc = dbbench.main(
            small_db_args(
                [
                    "--benchmarks", "fillrandom,readrandom",
                    "--stats",
                    "--stats-out", str(tmp_path / "s"),
                ]
            )
        )
        assert rc == 0
        for name in ("fillrandom", "readrandom"):
            for ext in (".json", ".prom", ".csv"):
                assert (tmp_path / ("s-%s%s" % (name, ext))).exists(), (name, ext)


class TestYcsbCli:
    def args(self, extra=()):
        return [
            "--records", "400",
            "--ops", "300",
            "--threads", "2",
            "--workers", "2",
            "--cores", "8",
        ] + list(extra)

    def test_load_workload(self, capsys):
        rc = ycsb.main(self.args(["--workload", "LOAD"]))
        assert rc == 0
        assert "LOAD" in capsys.readouterr().out

    def test_mixed_workloads(self, capsys):
        rc = ycsb.main(self.args(["--workload", "a,c"]))
        assert rc == 0
        out = capsys.readouterr().out
        assert "A" in out and "C" in out

    def test_scan_workload_e(self, capsys):
        rc = ycsb.main(self.args(["--workload", "E", "--ops", "50"]))
        assert rc == 0

    def test_unknown_workload_rejected(self, capsys):
        rc = ycsb.main(self.args(["--workload", "Z"]))
        assert rc == 2

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "y.json"
        rc = ycsb.main(
            self.args(["--workload", "C", "--json", str(out_file)])
        )
        assert rc == 0
        data = json.loads(out_file.read_text())
        assert data[0]["workload"] == "C"

    def test_p2kvs_system(self, capsys):
        rc = ycsb.main(self.args(["--workload", "B", "--system", "p2kvs"]))
        assert rc == 0

    def test_ycsb_a_stats_has_nonzero_queue_and_utilization(self, tmp_path, capsys):
        """Acceptance criterion: a YCSB-A run with --stats emits all three
        exports, and the sampled series shows nonzero OBM queue depth and
        device utilization."""
        base = tmp_path / "y"
        rc = ycsb.main(
            [
                # 4 KiB values against the 256 KiB write buffer force real
                # flush/compaction IO inside the short measured window.
                "--workload", "A",
                "--system", "p2kvs",
                "--records", "2000",
                "--ops", "2000",
                "--threads", "2",
                "--workers", "2",
                "--cores", "8",
                "--value-size", "4096",
                "--stats",
                "--stats-interval-ms", "0.02",
                "--stats-out", str(base),
            ]
        )
        assert rc == 0
        assert (tmp_path / "y.json").exists()
        assert (tmp_path / "y.prom").exists()
        csv = (tmp_path / "y.csv").read_text()
        assert any(v > 0 for v in _csv_column(csv, "p2kvs.obm.queue_depth"))
        assert any(v > 0 for v in _csv_column(csv, "device.in_flight_ios"))
        assert any(v > 0 for v in _csv_column(csv, "cpu.busy_cores"))
        out = capsys.readouterr().out
        assert "stall/utilization timeline" in out
