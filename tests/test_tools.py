"""Tests for the dbbench and ycsb CLI tools."""

import json

import pytest

from repro.tools import dbbench, ycsb


def _csv_column(csv_text, name):
    """All non-empty values of one column of a stats CSV, as floats."""
    lines = csv_text.strip().split("\n")
    header = lines[0].split(",")
    idx = header.index(name)
    return [
        float(cells[idx])
        for cells in (line.split(",") for line in lines[1:])
        if cells[idx]
    ]


def small_db_args(extra=()):
    return [
        "--num", "400",
        "--threads", "2",
        "--workers", "2",
        "--cores", "8",
    ] + list(extra)


class TestDbBench:
    def test_runs_fill_and_read(self, capsys):
        rc = dbbench.main(
            small_db_args(["--benchmarks", "fillrandom,readrandom"])
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fillrandom" in out and "readrandom" in out
        assert "KQPS" in out or "MQPS" in out or "QPS" in out

    def test_every_system_kind_runs(self, capsys):
        for system in ("rocksdb", "leveldb", "pebblesdb", "multi", "p2kvs", "kvell", "wiredtiger"):
            rc = dbbench.main(
                small_db_args(["--benchmarks", "fillrandom", "--system", system])
            )
            assert rc == 0, system

    def test_scan_benchmark(self, capsys):
        rc = dbbench.main(small_db_args(["--benchmarks", "scan"]))
        assert rc == 0
        assert "scan" in capsys.readouterr().out

    def test_overwrite_preloads(self, capsys):
        rc = dbbench.main(small_db_args(["--benchmarks", "overwrite"]))
        assert rc == 0

    def test_hdd_device(self, capsys):
        rc = dbbench.main(
            small_db_args(["--benchmarks", "fillseq", "--device", "hdd"])
        )
        assert rc == 0
        assert "device=hdd" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "r.json"
        rc = dbbench.main(
            small_db_args(["--benchmarks", "fillrandom", "--json", str(out_file)])
        )
        assert rc == 0
        data = json.loads(out_file.read_text())
        assert data[0]["benchmark"] == "fillrandom"
        assert data[0]["qps"] > 0

    def test_unknown_benchmark_rejected(self, capsys):
        rc = dbbench.main(small_db_args(["--benchmarks", "explode"]))
        assert rc == 2

    def test_p2kvs_flags(self, capsys):
        rc = dbbench.main(
            small_db_args(
                [
                    "--benchmarks", "fillrandom",
                    "--system", "p2kvs",
                    "--no-obm",
                    "--async-window", "32",
                ]
            )
        )
        assert rc == 0

    def test_page_cache_flag(self, capsys):
        rc = dbbench.main(
            small_db_args(
                ["--benchmarks", "readrandom", "--page-cache-mb", "0.25"]
            )
        )
        assert rc == 0

    def test_stats_flag_writes_three_exports(self, tmp_path, capsys):
        base = tmp_path / "s"
        rc = dbbench.main(
            small_db_args(
                [
                    "--benchmarks", "fillrandom",
                    "--system", "p2kvs",
                    "--stats",
                    "--stats-interval-ms", "0.02",
                    "--stats-out", str(base),
                ]
            )
        )
        assert rc == 0
        snapshot = json.loads((tmp_path / "s.json").read_text())
        assert any(k.endswith(".wal_appends") for k in snapshot["counters"])
        prom = (tmp_path / "s.prom").read_text()
        assert "# TYPE p2kvs_" in prom
        csv = (tmp_path / "s.csv").read_text()
        assert csv.startswith("time,")
        out = capsys.readouterr().out
        assert "stall/utilization timeline" in out
        assert "wrote stats" in out

    def test_stats_off_leaves_no_artifacts(self, tmp_path, capsys):
        rc = dbbench.main(
            small_db_args(
                ["--benchmarks", "fillrandom", "--stats-out", str(tmp_path / "s")]
            )
        )
        assert rc == 0
        assert list(tmp_path.iterdir()) == []
        assert "wrote stats" not in capsys.readouterr().out

    def test_stats_multiple_benchmarks_get_separate_bases(self, tmp_path, capsys):
        rc = dbbench.main(
            small_db_args(
                [
                    "--benchmarks", "fillrandom,readrandom",
                    "--stats",
                    "--stats-out", str(tmp_path / "s"),
                ]
            )
        )
        assert rc == 0
        for name in ("fillrandom", "readrandom"):
            for ext in (".json", ".prom", ".csv"):
                assert (tmp_path / ("s-%s%s" % (name, ext))).exists(), (name, ext)


class TestYcsbCli:
    def args(self, extra=()):
        return [
            "--records", "400",
            "--ops", "300",
            "--threads", "2",
            "--workers", "2",
            "--cores", "8",
        ] + list(extra)

    def test_load_workload(self, capsys):
        rc = ycsb.main(self.args(["--workload", "LOAD"]))
        assert rc == 0
        assert "LOAD" in capsys.readouterr().out

    def test_mixed_workloads(self, capsys):
        rc = ycsb.main(self.args(["--workload", "a,c"]))
        assert rc == 0
        out = capsys.readouterr().out
        assert "A" in out and "C" in out

    def test_scan_workload_e(self, capsys):
        rc = ycsb.main(self.args(["--workload", "E", "--ops", "50"]))
        assert rc == 0

    def test_unknown_workload_rejected(self, capsys):
        rc = ycsb.main(self.args(["--workload", "Z"]))
        assert rc == 2

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "y.json"
        rc = ycsb.main(
            self.args(["--workload", "C", "--json", str(out_file)])
        )
        assert rc == 0
        data = json.loads(out_file.read_text())
        assert data[0]["workload"] == "C"

    def test_p2kvs_system(self, capsys):
        rc = ycsb.main(self.args(["--workload", "B", "--system", "p2kvs"]))
        assert rc == 0

    def test_ycsb_a_stats_has_nonzero_queue_and_utilization(self, tmp_path, capsys):
        """Acceptance criterion: a YCSB-A run with --stats emits all three
        exports, and the sampled series shows nonzero OBM queue depth and
        device utilization."""
        base = tmp_path / "y"
        rc = ycsb.main(
            [
                # 4 KiB values against the 256 KiB write buffer force real
                # flush/compaction IO inside the short measured window.
                "--workload", "A",
                "--system", "p2kvs",
                "--records", "2000",
                "--ops", "2000",
                "--threads", "2",
                "--workers", "2",
                "--cores", "8",
                "--value-size", "4096",
                "--stats",
                "--stats-interval-ms", "0.02",
                "--stats-out", str(base),
            ]
        )
        assert rc == 0
        assert (tmp_path / "y.json").exists()
        assert (tmp_path / "y.prom").exists()
        csv = (tmp_path / "y.csv").read_text()
        assert any(v > 0 for v in _csv_column(csv, "p2kvs.obm.queue_depth"))
        assert any(v > 0 for v in _csv_column(csv, "device.in_flight_ios"))
        assert any(v > 0 for v in _csv_column(csv, "cpu.busy_cores"))
        out = capsys.readouterr().out
        assert "stall/utilization timeline" in out


class TestStrictSystemOptions:
    """open_system rejects undeclared options instead of ignoring them."""

    def test_unknown_option_raises_with_did_you_mean(self):
        from repro.engine import make_env
        from repro.systems import open_system

        env = make_env(n_cores=4)
        with pytest.raises(ValueError) as exc:
            open_system("p2kvs", env, asycn_window=256)
        msg = str(exc.value)
        assert "asycn_window" in msg
        assert "did you mean 'async_window'" in msg

    def test_unknown_option_without_close_match_lists_surface(self):
        from repro.engine import make_env
        from repro.systems import open_system

        env = make_env(n_cores=4)
        with pytest.raises(ValueError) as exc:
            open_system("rocksdb", env, workers=2)
        assert "no options" in str(exc.value)

    def test_describe_options_reflects_opener_signatures(self):
        from repro.systems import describe_options, system_names

        assert describe_options("rocksdb") == {}
        p2 = describe_options("p2kvs")
        assert p2["workers"] == 8 and p2["async_window"] == 0
        assert "sync_wal" in p2 and "instance" in p2
        for name in system_names():
            describe_options(name)  # never raises for a registered system
        with pytest.raises(ValueError):
            describe_options("nosuchsystem")

    def test_register_rejects_kwargs_catch_all(self):
        from repro.systems import SYSTEM_REGISTRY, register_system

        with pytest.raises(TypeError):
            @register_system("bad-system")
            def _open_bad(env, **_ignored):
                raise AssertionError("never opened")
        assert "bad-system" not in SYSTEM_REGISTRY

    def test_dbbench_filters_flags_per_system(self, capsys):
        # The CLI exposes workers/obm/async-window for every system; the
        # strict registry means dbbench must filter them, so a system
        # without those options still runs.
        rc = dbbench.main(
            small_db_args(
                ["--benchmarks", "fillrandom", "--system", "wiredtiger",
                 "--async-window", "64"]
            )
        )
        assert rc == 0

    def test_help_epilog_lists_per_system_options(self):
        epilog = dbbench.build_parser().epilog
        assert "p2kvs" in epilog and "async_window" in epilog
        assert ycsb.build_parser().epilog == epilog


class TestSharedFlagGroup:
    """The six CLIs share one argparse parent: same spelling everywhere."""

    SHARED = {
        "dbbench": ("trace_out", "stats", "stats_interval_ms", "stats_out",
                    "critpath", "critpath_out", "sanitize", "profile",
                    "profile_out", "schedule_seed"),
        "ycsb": ("trace_out", "stats", "stats_interval_ms", "stats_out",
                 "critpath", "critpath_out", "sanitize", "profile",
                 "profile_out", "schedule_seed"),
        "serve": ("trace_out", "stats", "critpath", "sanitize", "profile",
                  "schedule_seed", "monitor", "monitor_window_ms",
                  "monitor_out"),
        "monitor": ("sanitize", "profile", "profile_out", "schedule_seed"),
        "faultbench": ("profile", "profile_out"),
        "profile": ("schedule_seed",),
    }

    def _parser(self, tool):
        import importlib

        return importlib.import_module("repro.tools.%s" % tool).build_parser()

    @pytest.mark.parametrize("tool", sorted(SHARED))
    def test_tool_carries_its_shared_flags(self, tool):
        args = self._parser(tool).parse_args([])
        for dest in self.SHARED[tool]:
            assert hasattr(args, dest), (tool, dest)

    def test_flag_defaults_agree_across_tools(self):
        # Any flag present in two tools must parse to the same default —
        # the drift the shared parent exists to prevent.
        defaults = {}
        for tool in self.SHARED:
            args = vars(self._parser(tool).parse_args([]))
            for dest in self.SHARED[tool]:
                if dest in defaults:
                    assert defaults[dest][1] == args[dest], (
                        "default for --%s drifted between %s and %s"
                        % (dest, defaults[dest][0], tool)
                    )
                else:
                    defaults[dest] = (tool, args[dest])

    def test_parent_families_opt_out(self):
        from repro.tools.common import observability_parent

        thin = observability_parent(
            trace=False, stats=False, critpath=False, profile=False,
            sanitize=False,
        )
        args = thin.parse_args([])
        assert hasattr(args, "schedule_seed")
        assert not hasattr(args, "stats")
        assert not hasattr(args, "profile")

    def test_faultbench_profile_does_not_change_report(self, tmp_path, capsys):
        from repro.tools import faultbench

        out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
        rc1 = faultbench.main(
            ["--scenario", "engine-nvme-transient", "--out", str(out1)]
        )
        rc2 = faultbench.main(
            ["--scenario", "engine-nvme-transient", "--profile",
             "--out", str(out2)]
        )
        capsys.readouterr()
        assert rc1 == rc2 == 0
        assert out1.read_text() == out2.read_text()
