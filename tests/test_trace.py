"""Tests for the tracing layer: span invariants, zero-overhead default,
Chrome export, and the span-derived Figure 6 attribution."""

import json

import pytest

from repro.core import P2KVS
from repro.engine import LSMEngine, make_env, rocksdb_options
from repro.trace import (
    NULL_SPAN,
    NULL_TRACER,
    CATEGORIES,
    Tracer,
    fig06_from_contexts,
    fig06_from_spans,
    install_tracer,
    thread_track,
    to_chrome_events,
    uninstall_tracer,
    write_chrome_trace,
)
from repro.tools import dbbench
from tests.conftest import run_process

EPS = 1e-9


def small_options(**kw):
    kw.setdefault("write_buffer_size", 64 * 1024)
    kw.setdefault("target_file_size", 64 * 1024)
    kw.setdefault("max_bytes_for_level_base", 256 * 1024)
    return rocksdb_options(**kw)


def run_p2kvs_workload(env, n_ops=300, n_workers=2, value_size=112):
    """A deterministic single-user write workload; returns final sim time."""
    kvs = run_process(env, P2KVS.open(env, n_workers=n_workers))
    ctx = env.cpu.new_thread("user-0")

    def work():
        for i in range(n_ops):
            yield from kvs.put(ctx, b"key%08d" % i, b"v" * value_size)
        yield from kvs.close()

    run_process(env, work())
    return env.sim.now


class TestTracerBasics:
    def test_simulator_defaults_to_null_tracer(self):
        env = make_env(n_cores=4)
        assert env.sim.tracer is NULL_TRACER
        assert not env.sim.tracer.enabled

    def test_install_and_uninstall(self):
        env = make_env(n_cores=4)
        tracer = install_tracer(env)
        assert env.sim.tracer is tracer
        assert tracer.enabled and tracer.sim is env.sim
        uninstall_tracer(env)
        assert env.sim.tracer is NULL_TRACER

    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.begin("x", "c", "t")
        assert span is NULL_SPAN
        assert span.set(a=1) is span and span.finish() is span
        assert not span.finished and span.duration == 0.0
        assert NULL_TRACER.instant("x", "c", "t") is NULL_SPAN
        assert list(NULL_TRACER.spans()) == []
        assert NULL_TRACER.tracks() == []
        NULL_TRACER.clear()  # no-op, must not raise

    def test_unfinished_spans_are_not_recorded(self):
        env = make_env(n_cores=4)
        tracer = install_tracer(env)
        tracer.begin("open", "c", "t")  # never finished
        done = tracer.begin("done", "c", "t").finish(tag=1)
        assert [s.name for s in tracer.events] == ["done"]
        assert done.args == {"tag": 1}
        assert done.finish() is done  # double finish is a no-op
        assert len(tracer.events) == 1

    def test_max_events_increments_dropped(self):
        env = make_env(n_cores=4)
        tracer = install_tracer(env, max_events=10)
        for i in range(25):
            tracer.instant("i%d" % i, "c", "t")
        assert len(tracer.events) == 10
        assert tracer.dropped == 15
        tracer.clear()
        assert tracer.events == [] and tracer.dropped == 0

    def test_async_spans_get_unique_ids(self):
        env = make_env(n_cores=4)
        tracer = install_tracer(env)
        a = tracer.async_begin("a", "c", "t").finish()
        b = tracer.async_begin("b", "c", "t").finish()
        assert a.aid is not None and b.aid is not None and a.aid != b.aid


class TestZeroOverhead:
    def test_traced_run_ends_at_identical_sim_time(self):
        times = []
        for traced in (False, True):
            env = make_env(n_cores=8)
            if traced:
                install_tracer(env)
            times.append(run_p2kvs_workload(env))
        assert times[0] == times[1]

    def test_traced_engine_run_identical(self):
        times = []
        for traced in (False, True):
            env = make_env(n_cores=8)
            if traced:
                install_tracer(env)
            engine = run_process(env, LSMEngine.open(env, "db", small_options()))
            ctx = env.cpu.new_thread("w")

            def work():
                for i in range(200):
                    yield from engine.put(ctx, b"k%06d" % i, b"v" * 200)
                yield from engine.close()

            run_process(env, work())
            times.append(env.sim.now)
        assert times[0] == times[1]


class TestSpanInvariants:
    @pytest.fixture(scope="class")
    def traced(self):
        env = make_env(n_cores=8)
        tracer = install_tracer(env)
        # Enough bytes through 1 worker to force WAL flushes and a memtable
        # switch, so storage/device/flush spans all appear.
        run_p2kvs_workload(env, n_ops=800, n_workers=1, value_size=512)
        return env, tracer

    def test_all_recorded_spans_are_finished_and_ordered(self, traced):
        env, tracer = traced
        for span in tracer.events:
            assert span.finished
            assert span.end >= span.start >= 0.0
            assert span.end <= env.sim.now + EPS

    def test_expected_tracks_present(self, traced):
        _, tracer = traced
        tracks = tracer.tracks()
        prefixes = {t.split(":", 1)[0] for t in tracks}
        assert thread_track("user-0") in tracks
        assert "queues:worker-0" in tracks
        assert {"threads", "cores", "queues", "memtable", "storage",
                "device"} <= prefixes

    def test_expected_span_names_present(self, traced):
        _, tracer = traced
        names = {s.name for s in tracer.events}
        for expected in (
            "request:PUT",
            "queued:PUT",
            "execute:write",
            "wg:lead",
            "wg:wal",
            "wg:memtable",
            "wal:append",
            "wal:flush",
            "memtable:add",
            "flush",
        ):
            assert expected in names, expected

    def test_sync_spans_nest_on_each_track(self, traced):
        """Synchronous spans on one track either nest or are disjoint —
        partial overlap would mean broken instrumentation."""
        _, tracer = traced
        # Quantize to picoseconds: spans reconstructed as [now - dt, now]
        # carry one-ulp float noise, far below any real interval (>= ns).
        quant = lambda t: round(t, 12)
        by_track = {}
        for span in tracer.events:
            if span.aid is not None:
                continue  # async spans may overlap by design
            start, end = quant(span.start), quant(span.end)
            if end <= start:
                continue  # instants are trivially fine
            by_track.setdefault(span.track, []).append((start, end, span))
        for track, spans in by_track.items():
            spans.sort(key=lambda item: (item[0], -item[1]))
            stack = []
            for start, end, span in spans:
                while stack and stack[-1] <= start:
                    stack.pop()
                if stack:
                    # open enclosing span must fully contain this one
                    assert end <= stack[-1], (track, span)
                stack.append(end)

    def test_request_span_contains_queue_residency(self, traced):
        _, tracer = traced
        requests = list(tracer.spans(cat="request"))
        queued = list(tracer.spans(cat="queue"))
        assert len(requests) == 800
        assert len(queued) == 800
        for req, q in zip(
            sorted(requests, key=lambda s: s.start),
            sorted(queued, key=lambda s: s.start),
        ):
            assert req.start - EPS <= q.start and q.end <= req.end + EPS

    def test_request_spans_carry_routing_decision(self, traced):
        _, tracer = traced
        span = next(iter(tracer.spans(cat="request")))
        assert span.args["worker"] == 0
        assert span.args["op"] == "PUT"
        assert span.args["router"] == "hash"


class TestChromeExport:
    def test_json_roundtrip_and_schema(self, tmp_path):
        env = make_env(n_cores=8)
        tracer = install_tracer(env)
        run_p2kvs_workload(env, n_ops=100)
        path = tmp_path / "trace.json"
        assert write_chrome_trace(tracer, str(path)) == str(path)
        payload = json.loads(path.read_text())
        assert payload["otherData"]["dropped_events"] == 0
        events = payload["traceEvents"]
        assert events, "trace must not be empty"
        begins, ends = {}, {}
        for ev in events:
            assert {"ph", "name", "pid", "tid"} <= set(ev)
            if ev["ph"] == "M":
                continue
            assert ev["ts"] >= 0.0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
            elif ev["ph"] == "b":
                begins[ev["id"]] = ev
            elif ev["ph"] == "e":
                ends[ev["id"]] = ev
            else:
                assert ev["ph"] == "i"
        assert begins and set(begins) == set(ends)
        for aid, b in begins.items():
            assert ends[aid]["ts"] >= b["ts"]

    def test_metadata_names_every_track(self):
        env = make_env(n_cores=8)
        tracer = install_tracer(env)
        run_p2kvs_workload(env, n_ops=50)
        events = to_chrome_events(tracer)
        named = {
            (ev["pid"], ev["tid"])
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        used = {(ev["pid"], ev["tid"]) for ev in events if ev["ph"] != "M"}
        assert used <= named

    def test_timestamps_are_simulated_microseconds(self):
        env = make_env(n_cores=8)
        tracer = install_tracer(env)
        run_p2kvs_workload(env, n_ops=50)
        horizon_us = env.sim.now * 1e6
        for ev in to_chrome_events(tracer):
            if ev["ph"] != "M":
                assert ev["ts"] <= horizon_us + 1e-3


class TestFig06Attribution:
    def test_fig06_spans_match_contexts(self):
        """The span-derived breakdown equals the context-derived one — the
        guarantee that keeps docs/TRACING.md's table honest."""
        env = make_env(n_cores=8)
        tracer = install_tracer(env)
        engine = run_process(env, LSMEngine.open(env, "db", small_options()))
        contexts = []

        def writer(ctx, lo, hi):
            for i in range(lo, hi):
                yield from engine.put(ctx, b"k%08d" % i, b"v" * 112)

        for t in range(4):
            ctx = env.cpu.new_thread("user-%d" % t)
            contexts.append(ctx)
            env.sim.spawn(writer(ctx, t * 250, (t + 1) * 250))
        env.sim.run()

        from_ctx = fig06_from_contexts(contexts)
        from_spans = fig06_from_spans(
            tracer, tracks={ctx.track for ctx in contexts}
        )
        assert from_ctx["total"] > 0
        assert from_spans["total"] == pytest.approx(from_ctx["total"], rel=1e-9)
        for cat in CATEGORIES:
            assert from_spans["categories"][cat] == pytest.approx(
                from_ctx["categories"][cat], rel=1e-9, abs=1e-12
            )

    def test_window_clips_spans(self):
        env = make_env(n_cores=4)
        tracer = install_tracer(env)
        t0 = env.sim.now
        tracer.complete("wal", "busy", "threads:u", t0, t0 + 1.0)
        busy_full = fig06_from_spans(tracer)["categories"]["WAL"]
        busy_half = fig06_from_spans(tracer, window=(t0 + 0.5, t0 + 1.0))
        assert busy_full == pytest.approx(1.0)
        assert busy_half["categories"]["WAL"] == pytest.approx(0.5)

    def test_metrics_attribution_only_with_tracer(self):
        rc = dbbench.main(
            ["--num", "300", "--threads", "2", "--workers", "2",
             "--cores", "8", "--benchmarks", "fillrandom"]
        )
        assert rc == 0  # no tracer: must run without attribution machinery


class TestMetricsCollectorContract:
    def test_overlapping_collectors_assert(self):
        from repro.harness.metrics import MetricsCollector

        env = make_env(n_cores=4)
        first = MetricsCollector(env, "a")
        first.start()
        second = MetricsCollector(env, "b")
        with pytest.raises(AssertionError):
            second.start()
        first.finish(n_ops=0, user_bytes_written=0.0, memory_bytes=0)
        # sequential windows are fine once the first has finished
        second.start()
        second.finish(n_ops=0, user_bytes_written=0.0, memory_bytes=0)

    def test_restart_same_collector_is_allowed(self):
        from repro.harness.metrics import MetricsCollector

        env = make_env(n_cores=4)
        collector = MetricsCollector(env, "a")
        collector.start()
        collector.start()  # idempotent re-start of the active collector


class TestCliTraceOut:
    def test_dbbench_trace_out(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = dbbench.main(
            ["--num", "400", "--threads", "2", "--workers", "2",
             "--cores", "8", "--system", "p2kvs",
             "--benchmarks", "fillrandom", "--trace-out", str(out)]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "latency attribution" in printed
        assert str(out) in printed
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_dbbench_trace_out_multiple_benchmarks(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = dbbench.main(
            ["--num", "300", "--threads", "2", "--workers", "2",
             "--cores", "8", "--benchmarks", "fillrandom,readrandom",
             "--trace-out", str(out)]
        )
        assert rc == 0
        for name in ("fillrandom", "readrandom"):
            per = tmp_path / ("t-%s.json" % name)
            assert per.exists(), name
            assert json.loads(per.read_text())["traceEvents"]

    def test_ycsb_trace_out(self, tmp_path, capsys):
        from repro.tools import ycsb

        out = tmp_path / "y.json"
        rc = ycsb.main(
            ["--workload", "A", "--records", "300", "--ops", "300",
             "--threads", "2", "--workers", "2", "--cores", "8",
             "--system", "p2kvs", "--trace-out", str(out)]
        )
        assert rc == 0
        assert json.loads(out.read_text())["traceEvents"]
