"""GSN transactions and cross-instance crash consistency (Section 4.5)."""

from repro.core import P2KVS
from repro.engine import WriteBatch
from repro.engine.env import make_env
from tests.conftest import run_process


def key(i):
    return b"user%012d" % i


def open_p2kvs(env, **kwargs):
    kwargs.setdefault("n_workers", 4)
    return run_process(env, P2KVS.open(env, **kwargs))


def multi_instance_batch(kvs, items):
    """Build a batch guaranteed to span more than one instance."""
    batch = WriteBatch()
    for k, v in items:
        batch.put(k, v)
    workers = {kvs.router.route(k) for k, _ in items}
    assert len(workers) > 1, "test keys must span instances"
    return batch


class TestTransactions:
    def test_cross_instance_batch_applies_atomically(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")
        items = [(key(i), b"txn-%d" % i) for i in range(16)]

        def work():
            yield from kvs.write_batch(ctx, multi_instance_batch(kvs, items))
            out = []
            for k, _ in items:
                out.append((yield from kvs.get(ctx, k)))
            return out

        assert run_process(env, work()) == [v for _, v in items]

    def test_single_instance_batch_skips_txn_protocol(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")
        # All records on one key -> one instance.
        batch = WriteBatch().put(key(1), b"a").put(key(1), b"b")

        def work():
            yield from kvs.write_batch(ctx, batch)
            return (yield from kvs.get(ctx, key(1)))

        assert run_process(env, work()) == b"b"
        # No BEGIN/COMMIT records were needed.
        assert kvs.txn_log.vfile.size == 0

    def test_committed_txn_survives_crash(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")
        items = [(key(i), b"persist-%d" % i) for i in range(16)]

        def work():
            yield from kvs.write_batch(ctx, multi_instance_batch(kvs, items))
            yield from kvs.close()

        run_process(env, work())
        env.disk.crash()
        kvs2 = open_p2kvs(env)
        ctx2 = env.cpu.new_thread("u2")

        def check():
            out = []
            for k, _ in items:
                out.append((yield from kvs2.get(ctx2, k)))
            return out

        assert run_process(env, check()) == [v for _, v in items]

    def test_uncommitted_txn_rolled_back_after_crash(self, env):
        """Kill between sub-batch application and the COMMIT record: all
        fragments of the transaction must disappear at recovery."""
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")
        items = [(key(i), b"partial-%d" % i) for i in range(16)]
        batch = multi_instance_batch(kvs, items)

        # Apply the sub-batches exactly as write_batch would, but crash
        # before the commit record.
        from repro.core.requests import OP_WRITEBATCH, Request
        from repro.storage.wal import RECORD_TXN

        def work():
            by_worker = {}
            for vtype, k, v in batch:
                sub = by_worker.setdefault(kvs.router.route(k), WriteBatch())
                sub._records.append((vtype, k, v))
            gsn = kvs.gsn.allocate()
            yield from kvs.txn_log.log_begin(gsn)
            futures = []
            for worker_id, sub in by_worker.items():
                request = Request(
                    OP_WRITEBATCH, batch=sub, gsn=gsn, rtype=RECORD_TXN, no_merge=True
                )
                request.future = env.sim.event()
                kvs.workers[worker_id].submit(request)
                futures.append(request.future)
            yield env.sim.all_of(futures)
            # Make the instance WALs durable so the fragments *would* be
            # recoverable — the missing COMMIT must still roll them back.
            for adapter in kvs.adapters:
                yield from adapter.engine.log_writer.flush("wal")
            # ... crash happens here: no commit record.

        run_process(env, work())
        env.disk.crash()
        kvs2 = open_p2kvs(env)
        ctx2 = env.cpu.new_thread("u2")

        def check():
            out = []
            for k, _ in items:
                out.append((yield from kvs2.get(ctx2, k)))
            return out

        assert run_process(env, check()) == [None] * len(items)

    def test_committed_txn_plus_uncommitted_txn(self, env):
        """Figure 11's example: Tx A committed, Tx B applied-not-committed,
        Tx C incomplete.  Recovery keeps A, drops B and C."""
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")
        a_items = [(key(100 + i), b"A%d" % i) for i in range(8)]
        b_items = [(key(200 + i), b"B%d" % i) for i in range(8)]

        from repro.core.requests import OP_WRITEBATCH, Request
        from repro.storage.wal import RECORD_TXN

        def work():
            # Tx A: full protocol.
            yield from kvs.write_batch(ctx, multi_instance_batch(kvs, a_items))
            # Tx B: applied but not committed.
            gsn = kvs.gsn.allocate()
            yield from kvs.txn_log.log_begin(gsn)
            by_worker = {}
            for k, v in b_items:
                sub = by_worker.setdefault(kvs.router.route(k), WriteBatch())
                sub.put(k, v)
            futures = []
            for worker_id, sub in by_worker.items():
                request = Request(
                    OP_WRITEBATCH, batch=sub, gsn=gsn, rtype=RECORD_TXN, no_merge=True
                )
                request.future = env.sim.event()
                kvs.workers[worker_id].submit(request)
                futures.append(request.future)
            yield env.sim.all_of(futures)
            for adapter in kvs.adapters:
                yield from adapter.engine.log_writer.flush("wal")

        run_process(env, work())
        env.disk.crash()
        kvs2 = open_p2kvs(env)
        ctx2 = env.cpu.new_thread("u2")

        def check():
            a = []
            b = []
            for k, _ in a_items:
                a.append((yield from kvs2.get(ctx2, k)))
            for k, _ in b_items:
                b.append((yield from kvs2.get(ctx2, k)))
            return a, b

        a, b = run_process(env, check())
        assert a == [v for _, v in a_items]
        assert b == [None] * len(b_items)

    def test_gsn_strictly_increasing_and_recovered(self, env):
        kvs = open_p2kvs(env)
        gsns = [kvs.gsn.allocate() for _ in range(5)]
        assert gsns == sorted(gsns)
        assert len(set(gsns)) == 5
        ctx = env.cpu.new_thread("u")
        items = [(key(i), b"x") for i in range(16)]

        def work():
            yield from kvs.write_batch(ctx, multi_instance_batch(kvs, items))
            yield from kvs.close()

        run_process(env, work())
        env.disk.crash()
        kvs2 = open_p2kvs(env)
        # New GSNs continue above everything recorded in the txn log.
        assert kvs2.gsn.next_gsn > 1
