"""Unit tests for the VersionSet/manifest and the merging iterator."""

import pytest

from repro.engine.iterator import LevelCursor, MemTableCursor, MergingIterator
from repro.engine.options import EngineOptions
from repro.engine.version import FileMeta, VersionEdit, VersionSet
from repro.storage.memtable import MAX_SEQ, MemTable, VTYPE_DELETE, VTYPE_VALUE
from repro.storage.sstable import SSTableBuilder
from tests.conftest import run_process


def key(i):
    return b"key%06d" % i


def build_table(number, ids, seq=1, vtype=VTYPE_VALUE):
    builder = SSTableBuilder(number, block_target=256)
    for i in sorted(ids):
        builder.add(key(i), seq, vtype, b"t%d-%d" % (number, i))
    return builder.finish()


class TestVersionSet:
    def make_versions(self, env):
        return VersionSet(env, "db", EngineOptions())

    def test_apply_edit_adds_and_sorts(self, env):
        versions = self.make_versions(env)
        t1 = build_table(1, range(10, 20))
        t2 = build_table(2, range(0, 10))

        def work():
            yield from versions.log_and_apply(
                VersionEdit(added=[(1, FileMeta.from_table(t1))])
            )
            yield from versions.log_and_apply(
                VersionEdit(added=[(1, FileMeta.from_table(t2))])
            )

        run_process(env, work())
        files = versions.current.level_files(1)
        assert [f.number for f in files] == [2, 1]  # sorted by smallest key

    def test_l0_sorted_newest_first(self, env):
        versions = self.make_versions(env)

        def work():
            for number in (1, 2, 3):
                table = build_table(number, range(5))
                yield from versions.log_and_apply(
                    VersionEdit(added=[(0, FileMeta.from_table(table))])
                )

        run_process(env, work())
        assert [f.number for f in versions.current.level_files(0)] == [3, 2, 1]

    def test_delete_edit_removes(self, env):
        versions = self.make_versions(env)
        table = build_table(7, range(5))

        def work():
            yield from versions.log_and_apply(
                VersionEdit(added=[(0, FileMeta.from_table(table))])
            )
            yield from versions.log_and_apply(VersionEdit(deleted=[(0, 7)]))

        run_process(env, work())
        assert versions.current.level_files(0) == []

    def test_recover_rebuilds_from_manifest(self, env):
        versions = self.make_versions(env)
        table = build_table(3, range(8))
        blob = versions.blob_name(3)
        env.disk.put_blob(blob, table, table.file_size)
        env.disk.commit_blob(blob)

        def work():
            yield from versions.log_and_apply(
                VersionEdit(added=[(2, FileMeta.from_table(table))], log_number=9)
            )

        run_process(env, work())
        env.disk.crash()
        fresh = VersionSet(env, "db", EngineOptions())

        def recover():
            yield from fresh.recover()

        run_process(env, recover())
        assert [f.number for f in fresh.current.level_files(2)] == [3]
        assert fresh.log_number == 9
        assert fresh.next_file_number == 4

    def test_recover_gc_deletes_orphan_blobs(self, env):
        versions = self.make_versions(env)
        orphan = build_table(5, range(3))
        env.disk.put_blob(versions.blob_name(5), orphan, orphan.file_size)
        env.disk.commit_blob(versions.blob_name(5))

        def recover():
            yield from versions.recover()

        run_process(env, recover())
        assert not env.disk.blob_exists(versions.blob_name(5))

    def test_overlapping_query(self, env):
        versions = self.make_versions(env)
        t = build_table(1, range(10, 20))

        def work():
            yield from versions.log_and_apply(
                VersionEdit(added=[(1, FileMeta.from_table(t))])
            )

        run_process(env, work())
        version = versions.current
        assert version.overlapping(1, key(15), key(30)) != []
        assert version.overlapping(1, key(25), key(30)) == []
        assert version.level_bytes(1) == t.file_size
        assert version.total_files() == 1


class TestMergingIterator:
    def run_iterator(self, env, cursors, begin=None, snapshot=MAX_SEQ, limit=100):
        iterator = MergingIterator(cursors, snapshot)

        def work():
            yield from iterator.seek(begin)
            out = []
            while len(out) < limit:
                pair = yield from iterator.next_user()
                if pair is None:
                    break
                out.append(pair)
            return out

        return run_process(env, work())

    def test_merges_memtable_and_table(self, env):
        memtable = MemTable()
        memtable.add(10, VTYPE_VALUE, key(1), b"mem1")
        table = build_table(1, [0, 2], seq=1)
        cursors = [
            MemTableCursor(memtable),
            table.cursor(None, env.device),
        ]
        pairs = self.run_iterator(env, cursors)
        assert [k for k, _ in pairs] == [key(0), key(1), key(2)]

    def test_newest_version_wins_across_sources(self, env):
        memtable = MemTable()
        memtable.add(10, VTYPE_VALUE, key(0), b"newer")
        table = build_table(1, [0], seq=1)
        cursors = [MemTableCursor(memtable), table.cursor(None, env.device)]
        pairs = self.run_iterator(env, cursors)
        assert pairs == [(key(0), b"newer")]

    def test_tombstone_hides_older_table_entry(self, env):
        memtable = MemTable()
        memtable.add(10, VTYPE_DELETE, key(0), b"")
        table = build_table(1, [0, 1], seq=1)
        cursors = [MemTableCursor(memtable), table.cursor(None, env.device)]
        pairs = self.run_iterator(env, cursors)
        assert [k for k, _ in pairs] == [key(1)]

    def test_snapshot_filters_new_entries(self, env):
        memtable = MemTable()
        memtable.add(5, VTYPE_VALUE, key(0), b"old")
        memtable.add(10, VTYPE_VALUE, key(0), b"new")
        pairs = self.run_iterator(env, [MemTableCursor(memtable)], snapshot=7)
        assert pairs == [(key(0), b"old")]

    def test_seek_positions_all_sources(self, env):
        t1 = build_table(1, range(0, 10))
        t2 = build_table(2, range(10, 20))
        cursors = [t1.cursor(None, env.device), t2.cursor(None, env.device)]
        pairs = self.run_iterator(env, cursors, begin=key(8), limit=4)
        assert [k for k, _ in pairs] == [key(8), key(9), key(10), key(11)]


class TestLevelCursor:
    def test_walks_across_files(self, env):
        t1 = build_table(1, range(0, 5))
        t2 = build_table(2, range(5, 10))
        files = [FileMeta.from_table(t1), FileMeta.from_table(t2)]
        cursor = LevelCursor(files, None, env.device)

        def work():
            yield from cursor.seek(key(3))
            out = []
            while cursor.current is not None:
                out.append(cursor.current[0])
                yield from cursor.advance()
            return out

        keys = run_process(env, work())
        assert keys == [key(i) for i in range(3, 10)]

    def test_empty_level(self, env):
        cursor = LevelCursor([], None, env.device)

        def work():
            yield from cursor.seek(None)
            return cursor.current

        assert run_process(env, work()) is None

    def test_seek_past_all_files(self, env):
        t1 = build_table(1, range(0, 5))
        cursor = LevelCursor([FileMeta.from_table(t1)], None, env.device)

        def work():
            yield from cursor.seek(key(99))
            return cursor.current

        assert run_process(env, work()) is None
