"""Property tests for the WAL format: arbitrary payloads round-trip, and a
crash at ANY byte boundary yields a clean record prefix (never garbage)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import Corruption
from repro.storage.wal import (
    HEADER_SIZE,
    LogReader,
    RECORD_STANDALONE,
    RECORD_TXN,
    WalRecord,
    encode_record,
)

records_strategy = st.lists(
    st.tuples(
        st.binary(max_size=64),
        st.sampled_from([RECORD_STANDALONE, RECORD_TXN]),
        st.integers(0, 2**63 - 1),
    ),
    max_size=20,
)


@given(records=records_strategy)
@settings(max_examples=100)
def test_roundtrip_any_payloads(records):
    data = b"".join(encode_record(p, t, g) for p, t, g in records)
    decoded = [(r.payload, r.rtype, r.gsn) for r in LogReader(data)]
    assert decoded == records


@given(records=records_strategy, cut=st.integers(0, 2000))
@settings(max_examples=150)
def test_truncation_at_any_point_yields_a_prefix(records, cut):
    """Losing an arbitrary-length tail must never corrupt, reorder or
    fabricate records: the reader returns an exact prefix and flags
    truncation iff bytes were left over."""
    data = b"".join(encode_record(p, t, g) for p, t, g in records)
    cut = min(cut, len(data))
    reader = LogReader(data[:cut])
    decoded = [(r.payload, r.rtype, r.gsn) for r in reader]
    assert decoded == records[: len(decoded)]
    # A clean cut at a record boundary is not truncation; anything else is.
    consumed = sum(HEADER_SIZE + len(p) for p, _, _ in decoded)
    if consumed == cut:
        assert not reader.truncated
    else:
        assert reader.truncated


@given(
    records=st.lists(st.binary(max_size=32), min_size=2, max_size=10),
    flip_at=st.integers(0, 500),
)
@settings(max_examples=100)
def test_single_bit_corruption_never_passes_crc(records, flip_at):
    data = bytearray(b"".join(encode_record(p) for p in records))
    flip_at = flip_at % len(data)
    data[flip_at] ^= 0x01
    reader = LogReader(bytes(data))
    decoded = []
    corrupted = False
    try:
        for record in reader:
            decoded.append(record.payload)
    except Corruption:
        corrupted = True
    # The reader can never emit a payload that differs from the original
    # at the same position: a CRC mismatch raises Corruption *before* the
    # damaged record is yielded, and a length-field flip that runs the
    # record past the data reads as a torn tail.
    for got, want in zip(decoded, records):
        assert got == want
    # The only undetectable single-bit flip is one in a header field the
    # CRC does not cover (rtype/gsn) — the payload stream still decodes
    # completely and correctly in that case.
    assert corrupted or reader.truncated or decoded == records


@given(payload=st.binary(max_size=128), gsn=st.integers(0, 2**63 - 1))
@settings(max_examples=100)
def test_encoded_size_matches_record_accounting(payload, gsn):
    encoded = encode_record(payload, RECORD_TXN, gsn)
    assert len(encoded) == HEADER_SIZE + len(payload)
    record = next(iter(LogReader(encoded)))
    assert record == WalRecord(RECORD_TXN, gsn, payload)
    assert record.encoded_size == len(encoded)
