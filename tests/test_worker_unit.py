"""Behavioral tests for the p2KVS worker loop itself."""

import pytest

from repro.core import P2KVS, adapter_factory
from repro.core.requests import OP_GET, OP_PUT, OP_SCAN, OP_WRITEBATCH, Request
from repro.core.worker import Worker
from repro.engine import WriteBatch, make_env
from repro.baselines import wiredtiger_adapter_factory
from tests.conftest import run_process


def key(i):
    return b"user%012d" % i


def open_p2kvs(env, **kwargs):
    kwargs.setdefault("n_workers", 2)
    return run_process(env, P2KVS.open(env, **kwargs))


class TestWorkerExecution:
    def test_worker_counts_batches_and_requests(self, env):
        kvs = open_p2kvs(env, n_workers=1)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(20):
                yield from kvs.put(ctx, key(i), b"v")

        run_process(env, work())
        worker = kvs.workers[0]
        assert worker.counters.get("requests") == 20
        assert worker.counters.get("batches") <= 20
        assert worker.batch_sizes.count == worker.counters.get("batches")

    def test_obm_write_merge_counters(self, env):
        kvs = open_p2kvs(env, n_workers=1)
        ctx = env.cpu.new_thread("u")

        def work():
            # Async floods the queue so merges actually form.
            for i in range(64):
                yield from kvs.put_async(ctx, key(i), b"v")

        run_process(env, work())
        env.sim.run()
        worker = kvs.workers[0]
        assert worker.counters.get("obm_write_batches") > 0
        assert worker.counters.get("obm_write_merged") > worker.counters.get(
            "obm_write_batches"
        )

    def test_shutdown_stops_the_loop(self, env):
        kvs = open_p2kvs(env, n_workers=1)
        ctx = env.cpu.new_thread("u")

        def work():
            yield from kvs.put(ctx, b"k", b"v")
            yield from kvs.close()

        run_process(env, work())
        worker = kvs.workers[0]
        assert worker._proc.triggered  # loop exited

    def test_writebatch_request_through_worker(self, env):
        kvs = open_p2kvs(env, n_workers=1)
        worker = kvs.workers[0]
        batch = WriteBatch().put(b"a", b"1").put(b"b", b"2")
        request = Request(OP_WRITEBATCH, batch=batch)
        request.future = env.sim.event()
        worker.submit(request)
        env.sim.run()
        assert request.future.triggered
        ctx = env.cpu.new_thread("u")

        def check():
            return (yield from kvs.get(ctx, b"a"))

        assert run_process(env, check()) == b"1"

    def test_unbatched_writes_on_wiredtiger_adapter(self, env):
        """No batch-write support: OBM must execute writes one by one."""
        kvs = open_p2kvs(
            env, n_workers=1, adapter_open=wiredtiger_adapter_factory()
        )
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(32):
                yield from kvs.put_async(ctx, key(i), b"v")

        run_process(env, work())
        env.sim.run()
        worker = kvs.workers[0]
        # Merged write batches never form without engine support.
        assert worker.counters.get("obm_write_batches") == 0
        assert worker.adapter.store.counters.get("records_written") == 32

    def test_scan_request_executes_alone(self, env):
        kvs = open_p2kvs(env, n_workers=1)
        ctx = env.cpu.new_thread("u")

        def load():
            for i in range(10):
                yield from kvs.put(ctx, key(i), b"v")

        run_process(env, load())
        worker = kvs.workers[0]
        scan = Request(OP_SCAN, begin=key(0), count=5)
        scan.future = env.sim.event()
        get = Request(OP_GET, key=key(1))
        get.future = env.sim.event()
        worker.submit(scan)
        worker.submit(get)
        env.sim.run()
        assert scan.future.triggered and get.future.triggered
        assert len(scan.future.value.value) == 5  # future carries a KVStatus

    def test_worker_pinned_to_requested_core(self, env):
        kvs = open_p2kvs(env, n_workers=2, pin_workers=True)
        cores = [w.ctx.pinned for w in kvs.workers]
        assert cores == [0, 1]

    def test_unpinned_workers_option(self, env):
        kvs = open_p2kvs(env, n_workers=2, pin_workers=False)
        assert all(w.ctx.pinned is None for w in kvs.workers)


class TestFrameworkIntrospection:
    def test_queue_depths_and_obm_stats(self, env):
        kvs = open_p2kvs(env, n_workers=2)
        assert kvs.queue_depths() == [0, 0]
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(16):
                yield from kvs.put(ctx, key(i), b"v")

        run_process(env, work())
        stats = kvs.obm_stats()
        assert stats["requests"] == 16
        assert stats["avg_batch"] >= 1.0

    def test_memory_accounting_positive(self, env):
        kvs = open_p2kvs(env)
        ctx = env.cpu.new_thread("u")

        def work():
            for i in range(64):
                yield from kvs.put(ctx, key(i), b"v" * 100)

        run_process(env, work())
        assert kvs.memory_bytes() > 0
