"""Tests for key generators, distributions and the YCSB workload mixes."""

import collections

import pytest

from repro.core.router import HashRouter
from repro.workloads import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    WORKLOADS,
    YCSBWorkload,
    ZipfianGenerator,
    fillrandom,
    fillseq,
    make_key,
    make_value,
    overwrite,
    readrandom,
    scans,
)


class TestKeyGen:
    def test_keys_sort_by_id(self):
        keys = [make_key(i) for i in (0, 9, 10, 99, 100)]
        assert keys == sorted(keys)

    def test_value_size_exact(self):
        for size in (1, 16, 112, 1024):
            assert len(make_value(7, size)) == size

    def test_uniform_covers_space(self):
        gen = UniformGenerator(100, seed=1)
        seen = {gen.next_id() for _ in range(5000)}
        assert len(seen) > 90

    def test_uniform_rejects_empty(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)

    def test_zipfian_is_skewed(self):
        gen = ZipfianGenerator(1000, seed=2)
        counts = collections.Counter(gen.next_id() for _ in range(20000))
        top = counts.most_common(10)
        top_share = sum(c for _, c in top) / 20000
        assert top_share > 0.3  # hot head
        assert all(0 <= i < 1000 for i in counts)

    def test_zipfian_rank0_hottest(self):
        gen = ZipfianGenerator(1000, seed=3)
        counts = collections.Counter(gen.next_id() for _ in range(20000))
        assert counts.most_common(1)[0][0] == 0

    def test_scrambled_zipfian_spreads_hot_keys(self):
        """Hot items land in different hash partitions (Section 4.2)."""
        gen = ScrambledZipfianGenerator(100000, seed=4)
        router = HashRouter(8)
        counts = router.histogram(
            make_key(gen.next_id()) for _ in range(20000)
        )
        assert min(counts) > 0.5 * (20000 / 8)
        assert max(counts) < 2.0 * (20000 / 8)

    def test_latest_prefers_recent(self):
        gen = LatestGenerator(1000, seed=5)
        samples = [gen.next_id() for _ in range(5000)]
        recent = sum(1 for s in samples if s >= 900)
        assert recent / 5000 > 0.4
        assert all(0 <= s < 1000 for s in samples)

    def test_latest_advance_extends_range(self):
        gen = LatestGenerator(10, seed=6)
        new_id = gen.advance()
        assert new_id == 10
        assert gen.count == 11


class TestYCSB:
    def test_table1_ratios(self):
        """The specs must match the paper's Table 1."""
        assert WORKLOADS["A"].update_ratio == 0.5
        assert WORKLOADS["B"].read_ratio == 0.95
        assert WORKLOADS["C"].read_ratio == 1.0
        assert WORKLOADS["D"].distribution == "latest"
        assert WORKLOADS["E"].scan_ratio == 0.95
        assert WORKLOADS["F"].rmw_ratio == 0.5
        assert WORKLOADS["LOAD"].insert_ratio == 1.0
        assert WORKLOADS["LOAD"].distribution == "uniform"

    def test_bad_spec_rejected(self):
        from repro.workloads import WorkloadSpec

        with pytest.raises(ValueError):
            WorkloadSpec("bad", read_ratio=0.5, update_ratio=0.6)

    def test_load_ops_insert_everything_once(self):
        wl = YCSBWorkload("LOAD", record_count=100)
        ops = list(wl.load_ops())
        assert len(ops) == 100
        assert all(v == "insert" for v, _, _ in ops)
        assert len({k for _, k, _ in ops}) == 100

    def test_mix_proportions_roughly_match(self):
        wl = YCSBWorkload("A", record_count=1000, seed=7)
        verbs = collections.Counter(v for v, _, _ in wl.ops(4000))
        assert 0.4 < verbs["read"] / 4000 < 0.6
        assert 0.4 < verbs["update"] / 4000 < 0.6

    def test_workload_e_scan_lengths_bounded(self):
        wl = YCSBWorkload("E", record_count=1000, seed=8)
        for verb, _key, payload in wl.ops(500):
            if verb == "scan":
                assert 1 <= payload <= 100

    def test_workload_d_inserts_grow_keyspace(self):
        wl = YCSBWorkload("D", record_count=100, seed=9)
        inserted = [k for v, k, _ in wl.ops(2000) if v == "insert"]
        assert inserted
        assert all(k >= make_key(100) for k in inserted)

    def test_split_round_robin(self):
        wl = YCSBWorkload("C", record_count=100, seed=10)
        streams = wl.split(100, 4)
        assert [len(s) for s in streams] == [25, 25, 25, 25]

    def test_deterministic_given_seed(self):
        a = list(YCSBWorkload("A", 500, seed=11).ops(200))
        b = list(YCSBWorkload("A", 500, seed=11).ops(200))
        assert a == b


class TestMicrobench:
    def test_fillseq_is_sorted(self):
        keys = [k for _, k, _ in fillseq(100)]
        assert keys == sorted(keys)

    def test_fillrandom_is_permutation(self):
        keys = [k for _, k, _ in fillrandom(100)]
        assert sorted(keys) == [make_key(i) for i in range(100)]
        assert keys != sorted(keys)

    def test_overwrite_stays_in_keyspace(self):
        keys = {k for _, k, _ in overwrite(500, key_space=50)}
        assert keys <= {make_key(i) for i in range(50)}

    def test_readrandom_verbs(self):
        ops = list(readrandom(50, key_space=100))
        assert all(v == "read" for v, _, _ in ops)

    def test_scan_ops_carry_size(self):
        ops = list(scans(20, key_space=1000, scan_size=10))
        assert all(v == "scan" and payload == 10 for v, _, payload in ops)
